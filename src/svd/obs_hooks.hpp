// Shared observability hooks of the SVD engines (internal detail header).
//
// Every Hestenes-family engine reports the same metric names so runs are
// comparable across engines; all emission sites are at sweep/round
// granularity and guarded by a null check, and none of them touch the
// matrices beyond reads, so results are byte-identical with sinks attached.
// The full name/unit taxonomy is documented in docs/OBSERVABILITY.md.
//
// The per-sweep hook also feeds the live-telemetry watchdog
// (obs::Watchdog::on_sweep) with the off-diagonal Frobenius norm, so every
// engine that reports convergence progress gets stall detection for free.
#pragma once

#include <cstdint>

#include "linalg/kernels.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/numerics.hpp"
#include "obs/trace.hpp"

namespace hjsvd::detail {

/// Per-sweep convergence metrics, appended as series indexed by the 0-based
/// sweep number.  Deterministic across engines and thread counts (the
/// engines are bitwise identical).  This value overload serves engines whose
/// working matrix is not a double Matrix (the mixed engine's float phase
/// computes the measures itself, in double, and passes them in).  The
/// numerics probe, when attached, gets the same off-diagonal mass (it
/// publishes its per-pair aggregates at this sweep granularity).
inline void record_sweep_metrics(obs::MetricsRegistry* metrics,
                                 obs::Watchdog* watchdog,
                                 obs::Watchdog* deadline,
                                 obs::NumericsProbe* numerics,
                                 std::size_t sweep, double offdiag_frob,
                                 double max_rel_offdiag,
                                 std::uint64_t rotations,
                                 std::uint64_t skipped) {
  if (watchdog != nullptr) watchdog->on_sweep(offdiag_frob);
  // A deadline-only poller (ObsContext::deadline) gets its wall-clock check
  // here, once per sweep, so one long decomposition cannot blow past
  // --deadline-s unobserved.  on_sweep already polls an attached watchdog's
  // deadline, so an aliased pointer is not polled twice.
  if (deadline != nullptr && deadline != watchdog) deadline->check_deadline();
  if (numerics != nullptr) numerics->observe_sweep(sweep, offdiag_frob);
  if (metrics == nullptr) return;
  const auto idx = static_cast<double>(sweep);
  metrics->series_append("svd.sweep.offdiag_frobenius", "1", idx,
                         offdiag_frob);
  metrics->series_append("svd.sweep.max_rel_offdiag", "1", idx,
                         max_rel_offdiag);
  metrics->series_append("svd.sweep.rotations", "rotations", idx,
                         static_cast<double>(rotations));
  metrics->series_append("svd.sweep.skipped", "rotations", idx,
                         static_cast<double>(skipped));
}

inline void record_sweep_metrics(obs::MetricsRegistry* metrics,
                                 obs::Watchdog* watchdog,
                                 obs::Watchdog* deadline,
                                 obs::NumericsProbe* numerics,
                                 std::size_t sweep, const Matrix& d,
                                 std::uint64_t rotations,
                                 std::uint64_t skipped) {
  // Poll the deadline here, before the measure computation: callers skip
  // the Gram refresh when no convergence consumer is attached, and the
  // wall-clock check needs no matrix data anyway.
  if (deadline != nullptr && deadline != watchdog) deadline->check_deadline();
  if (metrics == nullptr && watchdog == nullptr && numerics == nullptr) return;
  record_sweep_metrics(metrics, watchdog, /*deadline=*/nullptr, numerics,
                       sweep, offdiag_frobenius(d), max_relative_offdiag(d),
                       rotations, skipped);
}

/// Whole-run summary: problem shape, sweep count, rotation totals.
inline void record_run_metrics(obs::MetricsRegistry* metrics, std::size_t m,
                               std::size_t n, std::size_t sweeps,
                               std::uint64_t rotations, std::uint64_t skipped,
                               bool converged) {
  if (metrics == nullptr) return;
  metrics->gauge_set("svd.rows", "1", static_cast<double>(m));
  metrics->gauge_set("svd.cols", "1", static_cast<double>(n));
  metrics->gauge_set("svd.sweeps", "sweeps", static_cast<double>(sweeps));
  metrics->gauge_set("svd.converged", "bool", converged ? 1.0 : 0.0);
  metrics->counter_add("svd.rotations_applied", "rotations", rotations);
  metrics->counter_add("svd.rotations_skipped", "rotations", skipped);
}

}  // namespace hjsvd::detail

// Explicit instantiations and convenience entry points of the
// mixed-precision modified Hestenes-Jacobi engine.
#include "svd/mixed_hestenes_impl.hpp"

namespace hjsvd {

template SvdResult mixed_modified_hestenes_svd_t<fp::NativeOps32,
                                                 fp::NativeOps>(
    const Matrix&, const MixedHestenesConfig&, MixedHestenesStats*,
    fp::NativeOps32, fp::NativeOps);

template SvdResult mixed_modified_hestenes_svd_t<fp::SoftOps32, fp::SoftOps>(
    const Matrix&, const MixedHestenesConfig&, MixedHestenesStats*,
    fp::SoftOps32, fp::SoftOps);

SvdResult mixed_modified_hestenes_svd(const Matrix& a,
                                      const MixedHestenesConfig& cfg,
                                      MixedHestenesStats* stats) {
  return mixed_modified_hestenes_svd_t(a, cfg, stats, fp::NativeOps32{},
                                       fp::NativeOps{});
}

SvdResult mixed_modified_hestenes_svd_soft(const Matrix& a,
                                           const MixedHestenesConfig& cfg,
                                           MixedHestenesStats* stats) {
  return mixed_modified_hestenes_svd_t(a, cfg, stats, fp::SoftOps32{},
                                       fp::SoftOps{});
}

const char* mixed_switch_reason_name(MixedSwitchReason reason) {
  switch (reason) {
    case MixedSwitchReason::kThreshold: return "threshold";
    case MixedSwitchReason::kStall: return "stall";
    case MixedSwitchReason::kBudget: return "budget";
    case MixedSwitchReason::kSkipped: return "skipped";
  }
  return "?";
}

}  // namespace hjsvd

// Template implementation of the modified Hestenes-Jacobi SVD (Algorithm 1).
// Included by hestenes.cpp, which provides the explicit instantiations.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <type_traits>

#include "linalg/kernels.hpp"
#include "svd/hestenes.hpp"
#include "svd/obs_hooks.hpp"
#include "svd/workspace.hpp"

namespace hjsvd {
namespace detail {

/// Scratch-buffer selector: a Workspace-acquired matrix when an arena is
/// attached, else `local` re-shaped in place.  Both paths hand back a
/// zeroed rows x cols matrix, so the caller's arithmetic cannot tell them
/// apart.
inline Matrix& scratch_matrix(Workspace* ws, Workspace::Slot slot,
                              std::size_t rows, std::size_t cols,
                              Matrix& local) {
  if (ws != nullptr) return ws->acquire(slot, rows, cols);
  local.reshape(rows, cols);
  return local;
}

/// Whether an Ops policy is native host-FPU arithmetic in the matrix's
/// scalar type, i.e. eligible for the SIMD-dispatched kernels (which are
/// bitwise identical to the scalar loops at every level).
template <class Ops, class T>
inline constexpr bool kNativeOpsFor =
    (std::is_same_v<Ops, fp::NativeOps> && std::is_same_v<T, double>) ||
    (std::is_same_v<Ops, fp::NativeOps32> && std::is_same_v<T, float>);

/// Applies the plane rotation to the covariance entries affected by
/// orthogonalizing columns (i, j) — Algorithm 1 lines 18-26.  D stores the
/// upper triangle (row <= col); the canonical location of the covariance
/// between columns p < q is D(p, q).  Both outputs of each pair are computed
/// from the *original* values, as the hardware update kernel does (Fig. 5;
/// the paper's pseudocode reads as if line 20 consumed line 19's output,
/// which would be wrong).  Mat is Matrix (double) or MatrixT<float> for the
/// mixed-precision float phase; the working scalar type follows the matrix.
template <class Mat, class Ops>
void rotate_covariances(Mat& d, std::size_t i, std::size_t j,
                        typename Mat::value_type c,
                        typename Mat::value_type s, Ops ops) {
  using T = typename Mat::value_type;
  const std::size_t n = d.cols();
  auto col_i = d.col(i);
  auto col_j = d.col(j);
  // k < i: covariances live at D(k, i) and D(k, j) — both contiguous, so
  // the native-arithmetic policy takes the SIMD-dispatched kernel (bitwise
  // identical to the loop below; see linalg/simd/simd.hpp).  The strided
  // middle/tail segments stay scalar.
  if constexpr (kNativeOpsFor<Ops, T>) {
    rotate_pair(col_i.first(i), col_j.first(i), c, s);
  } else {
    for (std::size_t k = 0; k < i; ++k) {
      const T x = col_i[k];
      const T y = col_j[k];
      col_i[k] = ops.sub(ops.mul(x, c), ops.mul(y, s));
      col_j[k] = ops.add(ops.mul(x, s), ops.mul(y, c));
    }
  }
  // i < k < j: covariances live at D(i, k) and D(k, j).
  for (std::size_t k = i + 1; k < j; ++k) {
    const T x = d(i, k);
    const T y = col_j[k];
    d(i, k) = ops.sub(ops.mul(x, c), ops.mul(y, s));
    col_j[k] = ops.add(ops.mul(x, s), ops.mul(y, c));
  }
  // k > j: covariances live at D(i, k) and D(j, k).
  for (std::size_t k = j + 1; k < n; ++k) {
    const T x = d(i, k);
    const T y = d(j, k);
    d(i, k) = ops.sub(ops.mul(x, c), ops.mul(y, s));
    d(j, k) = ops.add(ops.mul(x, s), ops.mul(y, c));
  }
}

/// Rotates columns i and j of a matrix per eqs. (11)-(12).
template <class Mat, class Ops>
void rotate_columns(Mat& v, std::size_t i, std::size_t j,
                    typename Mat::value_type c, typename Mat::value_type s,
                    Ops ops) {
  using T = typename Mat::value_type;
  auto vi = v.col(i);
  auto vj = v.col(j);
  if constexpr (kNativeOpsFor<Ops, T>) {
    // SIMD-dispatched, bitwise identical to the scalar loop below.
    rotate_pair(vi, vj, c, s);
  } else {
    for (std::size_t r = 0; r < vi.size(); ++r) {
      const T x = vi[r];
      const T y = vj[r];
      vi[r] = ops.sub(ops.mul(x, c), ops.mul(y, s));
      vj[r] = ops.add(ops.mul(x, s), ops.mul(y, c));
    }
  }
}

/// True when the covariance is small enough to skip under the config's
/// relative threshold (threshold-Jacobi; 0 skips only exact zeros).
///
/// The predicate is |d_pq| <= tol * sqrt(d_pp * d_qq) — relative to the
/// diagonal, so it is scale-invariant: svd(2^k A) must skip exactly the
/// pairs svd(A) skips.  The square-free fast path (cov^2 vs tol^2*dii*djj)
/// is only taken when both squared products are normal doubles, which keeps
/// every pre-existing in-range result bitwise identical; outside that range
/// the squares overflow to inf (inf <= inf was *true*, silently skipping
/// every pair of a 2^300-scaled matrix) or flush to zero (0 <= 0, same
/// failure at tiny scales), so the guarded sqrt form is used instead.
inline bool below_threshold(double cov, double dii, double djj,
                            double threshold) {
  if (cov == 0.0) return true;
  if (threshold <= 0.0) return false;
  const double lhs = cov * cov;
  const double rhs = threshold * threshold * dii * djj;
  constexpr double kLo = std::numeric_limits<double>::min();
  constexpr double kHi = std::numeric_limits<double>::max();
  if (lhs >= kLo && lhs <= kHi && rhs >= kLo && rhs <= kHi)
    return lhs <= rhs;
  // Scale-safe slow path: sqrt halves the exponents, so no intermediate can
  // overflow or underflow for finite inputs.  A tiny-negative diagonal
  // (rounding) makes the sqrt NaN and the comparison false: rotate, which
  // is always the conservative choice.
  return std::abs(cov) <= threshold * std::sqrt(dii) * std::sqrt(djj);
}

/// One rotation step on D (and V, when accumulated): Algorithm 1 lines 8-26.
/// Returns false when the pair was skipped (orthogonal or sub-threshold).
template <class Mat, class Ops>
bool apply_pair(Mat& d, Mat* v, const HestenesConfig& cfg, std::size_t i,
                std::size_t j, Ops ops) {
  using T = typename Mat::value_type;
  const T cov = d(i, j);
  if (below_threshold(static_cast<double>(cov), static_cast<double>(d(i, i)),
                      static_cast<double>(d(j, j)), cfg.rotation_threshold))
    return false;
  const RotationParamsT<T> p =
      compute_rotation(cfg.formula, d(j, j), d(i, i), cov, ops);
  if (!p.rotate) return false;
  const T tc = ops.mul(p.t, cov);
  d(j, j) = ops.add(d(j, j), tc);  // line 15
  d(i, i) = ops.sub(d(i, i), tc);  // line 16
  d(i, j) = T(0);                  // line 17
  rotate_covariances(d, i, j, p.cos, p.sin, ops);
  if (v != nullptr) rotate_columns(*v, i, j, p.cos, p.sin, ops);
  return true;
}

/// Record post-sweep convergence metrics.
inline SweepRecord make_record(const Matrix& d, std::uint64_t rotations,
                               std::uint64_t skipped) {
  SweepRecord rec;
  rec.mean_abs_offdiag = mean_abs_offdiag(d);
  rec.max_rel_offdiag = max_relative_offdiag(d);
  rec.rotations = rotations;
  rec.skipped = skipped;
  return rec;
}

/// Dot product with strict left-to-right accumulation under the policy.
template <class Ops>
double dot_ops(std::span<const double> x, std::span<const double> y, Ops ops) {
  double acc = 0.0;
  for (std::size_t r = 0; r < x.size(); ++r)
    acc = ops.add(acc, ops.mul(x[r], y[r]));
  return acc;
}

/// dot_ops, except native-arithmetic runs under the opt-in relaxed SIMD
/// tier take the lane-split kernel (norms included: dot of a column with
/// itself is bitwise squared_norm_relaxed).
template <class Ops>
double dot_maybe_relaxed(std::span<const double> x, std::span<const double> y,
                         const HestenesConfig& cfg, Ops ops) {
  if constexpr (std::is_same_v<Ops, fp::NativeOps>) {
    if (cfg.simd_relaxed) return dot_relaxed(x, y);
  }
  return dot_ops<Ops>(x, y, ops);
}

/// gram_upper_ops (chunk_rows == 1) with the same relaxed-tier escape.
template <class Ops>
Matrix gram_upper_maybe_relaxed(const Matrix& a, const HestenesConfig& cfg,
                                Ops ops) {
  if constexpr (std::is_same_v<Ops, fp::NativeOps>) {
    if (cfg.simd_relaxed) return gram_upper_relaxed(a);
  }
  return gram_upper_ops(a, ops);
}

/// Modified Gram-Schmidt orthonormalization of U's columns, in place.
///
/// U = A * V * Sigma^-1 loses column orthogonality as eps * kappa(A) on the
/// Gram path (cond(A^T A) = cond(A)^2; docs/ALGORITHM.md §6), and columns
/// whose singular value is numerically zero arrive as zero vectors.  Two
/// projection passes per column ("twice is enough", Giraud et al.) restore
/// orthogonality to machine precision; a column annihilated by the
/// projections — or zero on arrival — is completed from the null space with
/// the standard-basis vector least represented in the span of the previous
/// columns, so U always has exactly orthonormal columns.
template <class Ops>
void orthonormalize_columns(Matrix& u, Ops ops) {
  const std::size_t m = u.rows();
  const std::size_t k = u.cols();
  HJSVD_ASSERT(k <= m, "cannot orthonormalize more columns than rows");
  for (std::size_t t = 0; t < k; ++t) {
    auto ut = u.col(t);
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t s = 0; s < t; ++s) {
        const auto us = u.col(s);
        const double coef = dot_ops<Ops>(us, ut, ops);
        for (std::size_t r = 0; r < m; ++r)
          ut[r] = ops.sub(ut[r], ops.mul(coef, us[r]));
      }
    }
    double norm = ops.sqrt(dot_ops<Ops>(ut, ut, ops));
    // Valid columns arrive with norm near 1 (u_t = A v_t / sigma_t and
    // ||A v_t|| ~ sigma_t); a norm this small means the column carried no
    // independent direction (zero singular value, or pure rounding noise
    // aligned with earlier columns) and must be replaced, not rescaled.
    if (norm <= 0.25) {
      // Seed with the basis vector least represented in the current span:
      // residual^2 of e_r against orthonormal u_0..u_{t-1} is
      // 1 - sum_s u_s[r]^2, so minimize the row's energy.
      std::size_t best_row = 0;
      double best_energy = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        double energy = 0.0;
        for (std::size_t s = 0; s < t; ++s) {
          const double e = u.col(s)[r];
          energy = ops.add(energy, ops.mul(e, e));
        }
        if (energy < best_energy) {
          best_energy = energy;
          best_row = r;
        }
      }
      std::fill(ut.begin(), ut.end(), 0.0);
      ut[best_row] = 1.0;
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t s = 0; s < t; ++s) {
          const auto us = u.col(s);
          const double coef = dot_ops<Ops>(us, ut, ops);
          for (std::size_t r = 0; r < m; ++r)
            ut[r] = ops.sub(ut[r], ops.mul(coef, us[r]));
        }
      }
      norm = ops.sqrt(dot_ops<Ops>(ut, ut, ops));
      HJSVD_ASSERT(norm > 0.0, "null-space completion produced a zero vector");
    }
    const double inv = ops.div(1.0, norm);
    for (std::size_t r = 0; r < m; ++r) ut[r] = ops.mul(ut[r], inv);
  }
}

/// Shared finalization of the Gram-rotating paths: sqrt + sort the diagonal
/// of the converged D, gather the requested singular vectors, and form
/// U = A * V * Sigma^-1 (eq. (7)) with the re-orthonormalization pass.
/// `v` is the accumulated rotation product (identity-seeded) and may be
/// empty when neither U nor V was requested.
template <class Ops>
void finalize_gram_result(const Matrix& a, const Matrix& d, Matrix& v,
                          const HestenesConfig& cfg, SvdResult& result,
                          Ops ops, Workspace* ws = nullptr) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(m, n);
  // Singular values: sqrt of the diagonal (Algorithm 1 lines 28-29), sorted
  // descending.  Tiny negative diagonals can appear from rounding; clamp.
  std::vector<double> diag(n);
  for (std::size_t c = 0; c < n; ++c)
    diag[c] = d(c, c) > 0.0 ? ops.sqrt(d(c, c)) : 0.0;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return diag[x] > diag[y];
  });
  result.singular_values.resize(k);
  for (std::size_t t = 0; t < k; ++t)
    result.singular_values[t] = diag[order[t]];

  if (cfg.compute_u || cfg.compute_v) {
    // V_sorted escapes into the result when V was requested, so it must own
    // fresh storage then; with U only, it is pure scratch and comes from
    // the arena.
    Matrix v_sorted_local;
    Matrix& v_sorted =
        cfg.compute_v
            ? (v_sorted_local.reshape(n, k), v_sorted_local)
            : scratch_matrix(ws, Workspace::Slot::kVSorted, n, k,
                             v_sorted_local);
    for (std::size_t t = 0; t < k; ++t) {
      const auto src = v.col(order[t]);
      auto dst = v_sorted.col(t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    if (cfg.compute_u) {
      // U = A * V * Sigma^-1 (eq. (7)), then modified Gram-Schmidt: the
      // division restores unit scale only to eps * kappa(A), and columns
      // whose singular value is numerically zero need a null-space
      // completion (see orthonormalize_columns).
      Matrix b_local;
      Matrix& b =
          scratch_matrix(ws, Workspace::Slot::kFinalizeB, m, k, b_local);
      matmul_into(b, a, v_sorted);
      const double sigma_max =
          result.singular_values.empty() ? 0.0 : result.singular_values[0];
      const double cutoff =
          sigma_max * static_cast<double>(std::max(m, n)) * 1e-15;
      result.u = Matrix(m, k);
      for (std::size_t t = 0; t < k; ++t) {
        const double sv = result.singular_values[t];
        if (sv <= cutoff) continue;
        const auto bt = b.col(t);
        auto ut = result.u.col(t);
        for (std::size_t r = 0; r < m; ++r) ut[r] = bt[r] / sv;
      }
      orthonormalize_columns(result.u, ops);
    }
    if (cfg.compute_v) {
      result.v = std::move(v_sorted_local);
    }
  }
}

}  // namespace detail

template <class Ops>
void gram_upper_ops_into(Matrix& d, const Matrix& a, Ops ops,
                         std::size_t chunk_rows) {
  HJSVD_ENSURE(chunk_rows >= 1, "chunk_rows must be at least 1");
  const std::size_t n = a.cols();
  const std::size_t m = a.rows();
  HJSVD_ENSURE(d.rows() == n && d.cols() == n,
               "gram_upper_ops_into output has the wrong shape");
  // Entries are independent; parallelism is deterministic (no shared
  // accumulation) and enabled only for policies that allow it.
#pragma omp parallel for schedule(dynamic, 1) \
    if (fp::OpsTraits<Ops>::parallel_safe && n >= 64)
  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = a.col(i);
    for (std::size_t j = i; j < n; ++j) {
      const auto cj = a.col(j);
      // Partial sums over chunk_rows rows (the layered multiplier-array's
      // association), accumulated chunk by chunk; chunk_rows == 1 is strict
      // left-to-right (DESIGN.md §6).
      double acc = 0.0;
      for (std::size_t base = 0; base < m; base += chunk_rows) {
        const std::size_t end = std::min(m, base + chunk_rows);
        double chunk = ops.mul(ci[base], cj[base]);
        for (std::size_t r = base + 1; r < end; ++r)
          chunk = ops.add(chunk, ops.mul(ci[r], cj[r]));
        acc = ops.add(acc, chunk);
      }
      d(i, j) = acc;
    }
  }
}

template <class Ops>
Matrix gram_upper_ops(const Matrix& a, Ops ops, std::size_t chunk_rows) {
  Matrix d(a.cols(), a.cols());
  gram_upper_ops_into(d, a, ops, chunk_rows);
  return d;
}

template <class Ops>
SvdResult modified_hestenes_svd_t(const Matrix& a, const HestenesConfig& cfg,
                                  HestenesStats* stats, Ops ops) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");

  auto* trace = obs::active(cfg.obs.trace);
  auto* metrics = obs::active(cfg.obs.metrics);
  auto* watchdog = obs::active(cfg.obs.watchdog);
  auto* deadline = obs::active(cfg.obs.deadline);
  auto* numerics = obs::active(cfg.obs.numerics);
  const std::uint32_t tid =
      trace != nullptr ? trace->register_thread("hestenes (sequential)") : 0;

  obs::Span gram_span;
  if (trace != nullptr)
    gram_span = obs::Span(trace, tid, "svd", "gram",
                          obs::ArgsBuilder().add("rows", m).add("cols", n).str());
  // The two big working buffers come from the attached Workspace when one
  // is present, so a warm serve worker runs this whole function without
  // touching the heap.  Acquired buffers arrive zeroed, which is exactly
  // what the into-variants below require (they write the upper triangle /
  // diagonal only).
  Workspace* ws = cfg.workspace;
  Matrix d_local;
  Matrix& d = detail::scratch_matrix(ws, Workspace::Slot::kGram, n, n, d_local);
  if constexpr (std::is_same_v<Ops, fp::NativeOps>) {
    if (cfg.simd_relaxed && cfg.gram_chunk_rows == 1) {
      gram_upper_relaxed_into(d, a);
    } else {
      gram_upper_ops_into(d, a, ops, cfg.gram_chunk_rows);
    }
  } else {
    gram_upper_ops_into(d, a, ops, cfg.gram_chunk_rows);
  }
  gram_span.end();
  const bool need_v = cfg.compute_u || cfg.compute_v;
  Matrix v_local;
  Matrix& v = need_v ? detail::scratch_matrix(ws, Workspace::Slot::kVAccum, n,
                                              n, v_local)
                     : v_local;
  if (need_v)
    for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const auto pairs = sweep_pairs(cfg.ordering, n);
  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};

  std::size_t sweeps_done = 0;
  std::uint64_t total_rotations = 0, total_skipped = 0;
  std::uint64_t pair_seq = 0;  // numerics-probe sampling index
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    obs::Span sweep_span;
    if (trace != nullptr)
      sweep_span = obs::Span(trace, tid, "svd", "sweep",
                             obs::ArgsBuilder().add("sweep", sweep).str());
    std::uint64_t rotations = 0, skipped = 0;
    for (const auto& [i, j] : pairs) {
      // Probe reads happen before apply_pair mutates the pair's entries;
      // pure reads, so the arithmetic is untouched.
      if (numerics != nullptr && numerics->want(pair_seq))
        numerics->observe_pair(d(i, i), d(j, j), d(i, j));
      ++pair_seq;
      if (detail::apply_pair(d, need_v ? &v : nullptr, cfg, i, j, ops)) {
        ++rotations;
      } else {
        ++skipped;
      }
    }
    ++sweeps_done;
    total_rotations += rotations;
    total_skipped += skipped;
    if (stats != nullptr) {
      stats->total_rotations += rotations;
      stats->total_skipped += skipped;
      if (cfg.track_convergence)
        stats->sweeps.push_back(detail::make_record(d, rotations, skipped));
    }
    detail::record_sweep_metrics(metrics, watchdog, deadline, numerics, sweep, d,
                                 rotations, skipped);
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    // Fixed-sweep mode: report convergence by the library's default check.
    result.converged = max_relative_offdiag(d) < 1e-10;
  }

  obs::Span finalize_span;
  if (trace != nullptr) finalize_span = obs::Span(trace, tid, "svd", "finalize");
  detail::finalize_gram_result(a, d, v, cfg, result, ops, ws);
  finalize_span.end();
  if (numerics != nullptr) numerics->observe_finalize(a, result);
  detail::record_run_metrics(metrics, m, n, sweeps_done, total_rotations,
                             total_skipped, result.converged);
  return result;
}

}  // namespace hjsvd

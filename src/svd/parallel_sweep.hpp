// Multi-threaded sweep engine for one-sided Jacobi SVD.
//
// The hardware issues 8 independent Jacobi rotations per 64-cycle group and
// fans each rotation's covariance updates out over an array of update
// kernels (Fig. 1).  This module is the software mirror of that structure,
// exploiting the same disjoint-pair parallelism of the round-robin ordering
// (Fig. 6) on OpenMP threads:
//
//  * Plain path — all floor(n/2) pairs of a round touch disjoint columns, so
//    their dot products and column rotations run concurrently with no
//    synchronization inside the round.  Because no datum is read and written
//    by two different pairs, the result is bitwise identical to the
//    sequential round-robin plain Hestenes at every thread count.
//
//  * Modified (Gram-rotating) path — rotation parameters of a round depend
//    only on D entries no *other* pair of the round touches, so they are all
//    generated up front (the serial rotation component); the covariance
//    updates are then decomposed into 2x2 cross-blocks between slot pairs
//    (the block-partitioned analogue of the hardware's update-kernel array).
//    Each cross-block is owned by exactly one task and applies its two
//    rotations in round order, which makes the schedule race-free and the
//    result bitwise identical to the sequential round-robin modified
//    Hestenes at every thread count.
//
// Determinism contract (asserted by tests/svd/test_parallel_sweep.cpp):
// for any OMP_NUM_THREADS / ParallelSweepConfig::threads, both engines
// return bit-identical singular values, vectors, and sweep counts — equal
// to their sequential counterparts with Ordering::kRoundRobin.
#pragma once

#include "svd/hestenes.hpp"

namespace hjsvd {

/// Threading knobs of the parallel sweep engine.
struct ParallelSweepConfig {
  /// Worker thread count; 0 defers to the OpenMP runtime default
  /// (OMP_NUM_THREADS).  Results do not depend on this value.
  std::size_t threads = 0;
};

/// Pair-parallel plain (recomputing) one-sided Hestenes-Jacobi.  Uses
/// round-robin rounds regardless of cfg.ordering; other HestenesConfig
/// fields are honored.
SvdResult parallel_plain_hestenes_svd(const Matrix& a,
                                      const HestenesConfig& cfg = {},
                                      const ParallelSweepConfig& par = {},
                                      HestenesStats* stats = nullptr);

/// Block-partitioned modified (Gram-rotating) Hestenes-Jacobi: per round,
/// rotation parameters are generated serially (the hardware's rotation
/// component) and the D updates are applied by parallel cross-block tasks
/// (the update-kernel array).  Round-robin ordering is forced.
SvdResult parallel_modified_hestenes_svd(const Matrix& a,
                                         const HestenesConfig& cfg = {},
                                         const ParallelSweepConfig& par = {},
                                         HestenesStats* stats = nullptr);

}  // namespace hjsvd

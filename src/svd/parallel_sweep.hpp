// Multi-threaded sweep engine for one-sided Jacobi SVD.
//
// The hardware issues 8 independent Jacobi rotations per 64-cycle group and
// fans each rotation's covariance updates out over an array of update
// kernels (Fig. 1).  This module is the software mirror of that structure,
// exploiting the same disjoint-pair parallelism of the round-robin ordering
// (Fig. 6) on OpenMP threads:
//
//  * Plain path — all floor(n/2) pairs of a round touch disjoint columns, so
//    their dot products and column rotations run concurrently with no
//    synchronization inside the round.  Because no datum is read and written
//    by two different pairs, the result is bitwise identical to the
//    sequential round-robin plain Hestenes at every thread count.
//
//  * Modified (Gram-rotating) path — rotation parameters of a round depend
//    only on D entries no *other* pair of the round touches, so they are all
//    generated up front (the serial rotation component); the covariance
//    updates are then decomposed into 2x2 cross-blocks between slot pairs
//    (the block-partitioned analogue of the hardware's update-kernel array).
//    Each cross-block is owned by exactly one task and applies its two
//    rotations in round order, which makes the schedule race-free and the
//    result bitwise identical to the sequential round-robin modified
//    Hestenes at every thread count.
//
//  * Pipelined modified path — the software analogue of the hardware's
//    parameter FIFO (Fig. 1): a dedicated generator thread (the Jacobi
//    rotation component) runs one round ahead of a persistent pool of
//    update workers (the update-kernel array), so round r+1's rotation
//    parameters are computed while round r's cross-block covariance
//    updates drain.  A bounded parameter queue mirrors the 127-bit
//    internal FIFOs: the generator stalls when the queue is full, workers
//    stall when the parameter they need has not been issued yet, and the
//    queue's high-water mark is reported so it can be cross-checked
//    against the accelerator simulator's FIFO occupancy.
//
// Determinism contract (asserted by tests/svd/test_parallel_sweep.cpp and
// tests/svd/test_pipelined_sweep.cpp): for any OMP_NUM_THREADS /
// ParallelSweepConfig::threads / PipelinedSweepConfig::{threads,
// queue_depth}, all engines return bit-identical singular values, vectors,
// and sweep counts — equal to their sequential counterparts with
// Ordering::kRoundRobin.
#pragma once

#include "svd/hestenes.hpp"

namespace hjsvd {

/// Threading knobs of the parallel sweep engine.
struct ParallelSweepConfig {
  /// Worker thread count; 0 defers to the OpenMP runtime default
  /// (OMP_NUM_THREADS).  Results do not depend on this value.
  std::size_t threads = 0;
};

/// Knobs of the pipelined round engine.  Results do not depend on either
/// value (only wall-clock time and the reported queue statistics do).
struct PipelinedSweepConfig {
  /// Update-worker thread count; the rotation-parameter generator runs on
  /// its own additional thread (the hardware's dedicated rotation
  /// component).  0 defers to the OpenMP runtime default / hardware
  /// concurrency.
  std::size_t threads = 0;
  /// Capacity of the bounded rotation-parameter queue between the
  /// generator and the update workers, in rotations (the hardware buffers
  /// its 127-bit {cos, sin, index} words in internal FIFOs).  Clamped to
  /// at least 1.
  std::size_t queue_depth = 8;
};

/// Measured behavior of the bounded parameter queue over one run —
/// timing-dependent diagnostics (not deterministic, unlike the SVD
/// result).  Comparable against arch::AcceleratorRunResult's
/// param_fifo_high_water, which counts rotation *groups* rather than
/// single rotations.
struct PipelineStats {
  std::size_t queue_capacity = 0;   // configured depth actually used
  std::size_t queue_high_water = 0; // max rotations in flight at once
  std::uint64_t params_issued = 0;  // pushes (incl. skipped-pair markers)
  std::uint64_t producer_stalls = 0; // generator waits on a full queue
  std::uint64_t consumer_stalls = 0; // worker waits on a missing parameter

  // Per-phase/per-thread time accounting (seconds on the steady clock;
  // timing-dependent like the stall counters).  "Stall" is time spent inside
  // a pipeline wait — the generator waiting on a round r-1 dependency or a
  // full queue, a worker waiting for dispatch or a missing parameter; "busy"
  // is the thread's lifetime minus its stalls.  The ROADMAP's
  // generator-bottleneck question reads directly off generator_busy_s /
  // wall_s versus the workers' busy fractions (bench_parallel_sweep records
  // them in BENCH_pipelined_sweep.json).
  double wall_s = 0.0;              // whole-engine wall time
  double generator_busy_s = 0.0;
  double generator_stall_s = 0.0;
  std::vector<double> worker_busy_s;   // one entry per update worker
  std::vector<double> worker_stall_s;  // one entry per update worker
};

/// Pair-parallel plain (recomputing) one-sided Hestenes-Jacobi.  Uses
/// round-robin rounds regardless of cfg.ordering; other HestenesConfig
/// fields are honored.
SvdResult parallel_plain_hestenes_svd(const Matrix& a,
                                      const HestenesConfig& cfg = {},
                                      const ParallelSweepConfig& par = {},
                                      HestenesStats* stats = nullptr);

/// Block-partitioned modified (Gram-rotating) Hestenes-Jacobi: per round,
/// rotation parameters are generated serially (the hardware's rotation
/// component) and the D updates are applied by parallel cross-block tasks
/// (the update-kernel array).  Round-robin ordering is forced.
SvdResult parallel_modified_hestenes_svd(const Matrix& a,
                                         const HestenesConfig& cfg = {},
                                         const ParallelSweepConfig& par = {},
                                         HestenesStats* stats = nullptr);

/// Pipelined modified (Gram-rotating) Hestenes-Jacobi: a persistent
/// thread-pool round engine in which round r+1's rotation parameters are
/// generated concurrently with round r's cross-block covariance updates,
/// coupled through a bounded parameter queue (the software analogue of the
/// hardware's param FIFO).  Round-robin ordering is forced; the result is
/// bitwise identical to the sequential kRoundRobin modified algorithm at
/// every thread count and queue depth.  `pipeline` (optional) receives the
/// queue's measured occupancy statistics.
SvdResult pipelined_modified_hestenes_svd(const Matrix& a,
                                          const HestenesConfig& cfg = {},
                                          const PipelinedSweepConfig& pipe = {},
                                          HestenesStats* stats = nullptr,
                                          PipelineStats* pipeline = nullptr);

}  // namespace hjsvd

#include "svd/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fp/ops.hpp"
#include "linalg/kernels.hpp"
#include "svd/hestenes_impl.hpp"  // detail::rotate_columns
#include "svd/ordering.hpp"
#include "svd/rotation.hpp"

namespace hjsvd {
namespace {

/// Grows a matrix by one column (and, for square V, one row), preserving
/// contents and placing 1 on the new diagonal of V-style matrices.
Matrix grown(const Matrix& old, std::size_t rows, std::size_t cols,
             bool unit_diagonal) {
  Matrix next(rows, cols);
  for (std::size_t c = 0; c < old.cols(); ++c) {
    const auto src = old.col(c);
    auto dst = next.col(c);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  if (unit_diagonal && cols > 0) next(rows - 1, cols - 1) = 1.0;
  return next;
}

}  // namespace

IncrementalHestenes::IncrementalHestenes(std::size_t rows,
                                         const IncrementalConfig& cfg)
    : cfg_(cfg), rows_(rows), b_(rows, 0), v_(0, 0) {
  HJSVD_ENSURE(rows > 0, "need at least one row");
  HJSVD_ENSURE(cfg.append_passes > 0 && cfg.finalize_sweeps > 0,
               "passes/sweeps must be positive");
}

void IncrementalHestenes::orthogonalize_pair(std::size_t i, std::size_t j) {
  const fp::NativeOps ops;
  const double nii = squared_norm(b_.col(i));
  const double njj = squared_norm(b_.col(j));
  const double cov = dot(b_.col(i), b_.col(j));
  const RotationParams p = compute_rotation(cfg_.formula, njj, nii, cov, ops);
  if (!p.rotate) return;
  detail::rotate_columns(b_, i, j, p.cos, p.sin, ops);
  detail::rotate_columns(v_, i, j, p.cos, p.sin, ops);
}

void IncrementalHestenes::append_column(std::span<const double> column) {
  HJSVD_ENSURE(column.size() == rows_, "column length must match rows()");
  for (double x : column)
    HJSVD_ENSURE(std::isfinite(x), "column entries must be finite");
  b_ = grown(b_, rows_, cols_ + 1, /*unit_diagonal=*/false);
  v_ = grown(v_, cols_ + 1, cols_ + 1, /*unit_diagonal=*/true);
  auto dst = b_.col(cols_);
  std::copy(column.begin(), column.end(), dst.begin());
  ++cols_;
  // Orthogonalize the newcomer against every existing column; existing
  // columns are already mutually (near-)orthogonal, and rotations against
  // the newcomer only mildly disturb that — finalize() cleans up.
  const std::size_t j = cols_ - 1;
  for (std::size_t pass = 0; pass < cfg_.append_passes; ++pass)
    for (std::size_t i = 0; i < j; ++i) orthogonalize_pair(i, j);
}

SvdResult IncrementalHestenes::finalize(bool compute_u, bool compute_v) {
  HJSVD_ENSURE(cols_ > 0, "no columns appended yet");
  SvdResult result;
  const fp::NativeOps ops;
  // Refresh sweeps over all pairs until converged.
  std::size_t sweeps = 0;
  if (cols_ > 1) {
    const auto pairs = sweep_pairs(Ordering::kRoundRobin, cols_);
    for (; sweeps < cfg_.finalize_sweeps; ++sweeps) {
      for (const auto& [i, j] : pairs) orthogonalize_pair(i, j);
      if (max_relative_offdiag(gram_upper_ops(b_, ops)) < cfg_.tolerance) {
        result.converged = true;
        ++sweeps;
        break;
      }
    }
  } else {
    result.converged = true;
  }
  result.sweeps = sweeps;

  const std::size_t k = std::min(rows_, cols_);
  std::vector<double> norms(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double sq = squared_norm(b_.col(c));
    norms[c] = sq > 0.0 ? std::sqrt(sq) : 0.0;
  }
  std::vector<std::size_t> order(cols_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return norms[x] > norms[y];
  });
  result.singular_values.resize(k);
  for (std::size_t t = 0; t < k; ++t)
    result.singular_values[t] = norms[order[t]];

  const double sigma_max = result.singular_values.empty()
                               ? 0.0
                               : result.singular_values[0];
  const double cutoff =
      sigma_max * static_cast<double>(std::max(rows_, cols_)) * 1e-15;
  if (compute_u) {
    result.u = Matrix(rows_, k);
    for (std::size_t t = 0; t < k; ++t) {
      const double sv = norms[order[t]];
      if (sv <= cutoff) continue;
      const auto bt = b_.col(order[t]);
      auto ut = result.u.col(t);
      for (std::size_t r = 0; r < rows_; ++r) ut[r] = bt[r] / sv;
    }
  }
  if (compute_v) {
    result.v = Matrix(cols_, k);
    for (std::size_t t = 0; t < k; ++t) {
      const auto src = v_.col(order[t]);
      auto dst = result.v.col(t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return result;
}

Matrix IncrementalHestenes::assembled() const {
  HJSVD_ENSURE(cols_ > 0, "no columns appended yet");
  // A = B * V^T (V orthogonal: the rotations applied to A's columns).
  return matmul(b_, v_.transposed());
}

}  // namespace hjsvd

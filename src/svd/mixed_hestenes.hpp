// Mixed-precision modified Hestenes-Jacobi SVD (docs/ALGORITHM.md §10).
//
// The opening sweeps run the Gram-rotating engine entirely in binary32 —
// rotation generation and the D = A^T A updates — on a power-of-two
// prescaled copy of the input.  Once the off-diagonal mass of D drops below
// a switch threshold (or the float iteration stalls at its precision
// floor), the accumulated rotation product V is promoted to binary64,
// re-orthonormalized, and the engine recomputes D = (A V)^T (A V) in
// double from the *original* columns — one full Gram recompute that erases
// the accumulated float rounding from D — before finishing with ordinary
// double sweeps.  The float sweeps cost roughly half the memory traffic
// (and 8 SIMD lanes instead of 4), and the double phase starts from a
// nearly-diagonal D, so it needs strictly fewer double-precision sweeps
// than the all-double engine (asserted by bench/mixed_precision.cpp).
#pragma once

#include "svd/hestenes.hpp"

namespace hjsvd {

/// Why the engine left the float phase.
enum class MixedSwitchReason {
  kThreshold,  ///< off-diagonal measure fell below switch_threshold
  kStall,      ///< float iteration hit its precision floor (no progress)
  kBudget,     ///< float sweep budget exhausted
  kSkipped,    ///< float phase not run (n < 2 or all-zero input)
};

const char* mixed_switch_reason_name(MixedSwitchReason reason);

/// Configuration of a mixed-precision run.  `base` carries everything the
/// all-double engine understands (ordering, rotation formula, tolerance,
/// sweep cap, observability sinks); the extra fields steer the precision
/// switch.
struct MixedHestenesConfig {
  HestenesConfig base;

  /// Promote to double once max |off-diag| / max diag of the float-phase D
  /// falls below this.  Values near sqrt(eps_single) ~ 3e-4 hand over just
  /// as binary32 runs out of precision; the default leaves a small margin.
  /// Exposed as SvdOptions::mp_switch_threshold / `hjsvd_cli --mp-switch`.
  double switch_threshold = 1e-4;

  /// Cap on float-phase sweeps.  0 means base.max_sweeps - 1: at least the
  /// final sweep always runs in double.
  std::size_t max_float_sweeps = 0;

  /// Stall detection: promote when a float sweep shrinks the off-diagonal
  /// measure to no less than stall_factor times its previous value — the
  /// iteration has hit the binary32 noise floor and further float sweeps
  /// are wasted work.
  double stall_factor = 0.9;
};

/// Statistics of a completed mixed-precision run.
struct MixedHestenesStats {
  std::size_t float_sweeps = 0;   ///< binary32 sweeps executed
  std::size_t double_sweeps = 0;  ///< binary64 sweeps executed
  MixedSwitchReason switch_reason = MixedSwitchReason::kSkipped;
  /// max |off-diag| / max diag of the float D at the moment of promotion.
  double offdiag_at_switch = 0.0;
  /// Same measure immediately after the double Gram recompute — what the
  /// double phase actually starts from (the float phase's real progress,
  /// with its rounding noise in D erased).
  double offdiag_after_recompute = 0.0;
  /// Per-sweep records across both phases (float first) when
  /// base.track_convergence is set; measures are always computed in double.
  HestenesStats sweeps;
};

/// Mixed-precision engine, generic over the two arithmetic policies
/// (binary32 float phase, binary64 refinement).  Defined in
/// mixed_hestenes_impl.hpp and explicitly instantiated for the
/// (NativeOps32, NativeOps) and (SoftOps32, SoftOps) pairs.
template <class OpsF, class OpsD>
SvdResult mixed_modified_hestenes_svd_t(const Matrix& a,
                                        const MixedHestenesConfig& cfg,
                                        MixedHestenesStats* stats, OpsF opsf,
                                        OpsD opsd);

/// Host-FPU convenience entry point (float sweeps + double refinement).
SvdResult mixed_modified_hestenes_svd(const Matrix& a,
                                      const MixedHestenesConfig& cfg = {},
                                      MixedHestenesStats* stats = nullptr);

/// Bit-accurate soft-float entry point (binary32 + binary64 core models).
SvdResult mixed_modified_hestenes_svd_soft(const Matrix& a,
                                           const MixedHestenesConfig& cfg = {},
                                           MixedHestenesStats* stats = nullptr);

}  // namespace hjsvd

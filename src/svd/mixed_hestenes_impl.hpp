// Template implementation of the mixed-precision modified Hestenes-Jacobi
// SVD.  Included by mixed_hestenes.cpp, which provides the explicit
// instantiations for the (NativeOps32, NativeOps) and (SoftOps32, SoftOps)
// policy pairs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "linalg/kernels.hpp"
#include "svd/hestenes_impl.hpp"
#include "svd/mixed_hestenes.hpp"
#include "svd/obs_hooks.hpp"

namespace hjsvd {
namespace detail {

/// max |off-diag| / max diag of an upper-triangular D in any scalar type;
/// accumulated in double so the float phase's convergence measure is exact.
template <class Mat>
double max_relative_offdiag_t(const Mat& d) {
  const std::size_t n = d.cols();
  double max_diag = 0.0, max_off = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(static_cast<double>(d(i, i))));
    for (std::size_t j = i + 1; j < n; ++j)
      max_off = std::max(max_off, std::abs(static_cast<double>(d(i, j))));
  }
  if (max_diag == 0.0)
    return max_off == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return max_off / max_diag;
}

/// off(D) = sqrt(2 * sum_{i<j} d_ij^2) in double, any scalar storage.
template <class Mat>
double offdiag_frobenius_t(const Mat& d) {
  const std::size_t n = d.cols();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = static_cast<double>(d(i, j));
      sum += v * v;
    }
  return std::sqrt(2.0 * sum);
}

/// mean |off-diag| in double, any scalar storage (Figs. 10-11 metric).
template <class Mat>
double mean_abs_offdiag_t(const Mat& d) {
  const std::size_t n = d.cols();
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      sum += std::abs(static_cast<double>(d(i, j)));
  return sum / (static_cast<double>(n) * (n - 1) / 2.0);
}

/// Upper-triangular D = B^T B of a float matrix under the binary32 policy;
/// strict left-to-right accumulation (the float analogue of
/// gram_upper_ops with chunk_rows == 1).
template <class OpsF>
MatrixT<float> gram_upper_f32(const MatrixT<float>& b, OpsF ops) {
  const std::size_t n = b.cols();
  MatrixT<float> d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ci = b.col(i);
    for (std::size_t j = i; j < n; ++j) {
      const auto cj = b.col(j);
      float acc = 0.0f;
      for (std::size_t r = 0; r < ci.size(); ++r)
        acc = ops.add(acc, ops.mul(ci[r], cj[r]));
      d(i, j) = acc;
    }
  }
  return d;
}

}  // namespace detail

template <class OpsF, class OpsD>
SvdResult mixed_modified_hestenes_svd_t(const Matrix& a,
                                        const MixedHestenesConfig& cfg,
                                        MixedHestenesStats* stats, OpsF opsf,
                                        OpsD opsd) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.base.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(cfg.switch_threshold > 0.0 &&
                   std::isfinite(cfg.switch_threshold),
               "switch_threshold must be positive and finite");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");

  auto* trace = obs::active(cfg.base.obs.trace);
  auto* metrics = obs::active(cfg.base.obs.metrics);
  auto* watchdog = obs::active(cfg.base.obs.watchdog);
  auto* deadline = obs::active(cfg.base.obs.deadline);
  auto* numerics = obs::active(cfg.base.obs.numerics);
  const std::uint32_t tid =
      trace != nullptr ? trace->register_thread("hestenes (mixed)") : 0;

  if (stats != nullptr) *stats = MixedHestenesStats{};
  const auto pairs = sweep_pairs(cfg.base.ordering, n);
  // One sampling sequence spanning both precision phases; float-phase
  // entries are widened to double for the probe (a read-only view — the
  // engine's own float arithmetic is untouched).
  std::uint64_t pair_seq = 0;

  // ---------------------------------------------------------------- float
  // phase.  Works on B = A * 2^-e (e = exponent of max |a_ij|), so the
  // largest entry lands in [0.5, 1): the prescale is an exact power of two
  // (no rounding beyond the binary32 narrowing itself) and keeps the float
  // Gram entries far from binary32 overflow for any input A the double
  // engine accepts.  V accumulates in float; D rotates in float.
  double amax = 0.0;
  for (double val : a.data()) amax = std::max(amax, std::abs(val));

  MixedSwitchReason reason = MixedSwitchReason::kSkipped;
  std::size_t float_sweeps = 0;
  double offdiag_at_switch = 0.0;
  MatrixT<float> v32;

  const std::size_t float_budget =
      cfg.max_float_sweeps > 0
          ? std::min(cfg.max_float_sweeps, cfg.base.max_sweeps - 1)
          : cfg.base.max_sweeps - 1;

  if (n >= 2 && amax > 0.0 && float_budget > 0) {
    int e = 0;
    std::frexp(amax, &e);
    const double prescale = std::ldexp(1.0, -e);
    MatrixT<float> b32(m, n);
    {
      const auto src = a.data();
      auto dst = b32.data();
      for (std::size_t idx = 0; idx < src.size(); ++idx)
        dst[idx] = static_cast<float>(src[idx] * prescale);
    }

    obs::Span gram_span;
    if (trace != nullptr)
      gram_span = obs::Span(
          trace, tid, "svd", "gram32",
          obs::ArgsBuilder().add("rows", m).add("cols", n).str());
    MatrixT<float> d32 = detail::gram_upper_f32(b32, opsf);
    gram_span.end();
    v32 = MatrixT<float>::identity(n);

    double prev_measure = detail::max_relative_offdiag_t(d32);
    for (std::size_t sweep = 0; sweep < float_budget; ++sweep) {
      obs::Span sweep_span;
      if (trace != nullptr)
        sweep_span = obs::Span(
            trace, tid, "svd", "sweep32",
            obs::ArgsBuilder().add("sweep", sweep).str());
      std::uint64_t rotations = 0, skipped = 0;
      for (const auto& [i, j] : pairs) {
        if (numerics != nullptr && numerics->want(pair_seq))
          numerics->observe_pair(static_cast<double>(d32(i, i)),
                                 static_cast<double>(d32(j, j)),
                                 static_cast<double>(d32(i, j)));
        ++pair_seq;
        if (detail::apply_pair(d32, &v32, cfg.base, i, j, opsf)) {
          ++rotations;
        } else {
          ++skipped;
        }
      }
      ++float_sweeps;
      const double measure = detail::max_relative_offdiag_t(d32);
      if (stats != nullptr) {
        stats->sweeps.total_rotations += rotations;
        stats->sweeps.total_skipped += skipped;
        if (cfg.base.track_convergence) {
          SweepRecord rec;
          rec.mean_abs_offdiag = detail::mean_abs_offdiag_t(d32);
          rec.max_rel_offdiag = measure;
          rec.rotations = rotations;
          rec.skipped = skipped;
          stats->sweeps.sweeps.push_back(rec);
        }
      }
      detail::record_sweep_metrics(metrics, watchdog, deadline, numerics, sweep,
                                   detail::offdiag_frobenius_t(d32), measure,
                                   rotations, skipped);
      offdiag_at_switch = measure;
      if (measure < cfg.switch_threshold) {
        reason = MixedSwitchReason::kThreshold;
        break;
      }
      // The iteration converges linearly per sweep until it hits the
      // binary32 noise floor; a sweep that barely moves the measure means
      // further float work is wasted — hand over to double now.
      if (measure >= cfg.stall_factor * prev_measure) {
        reason = MixedSwitchReason::kStall;
        break;
      }
      prev_measure = measure;
    }
    if (reason == MixedSwitchReason::kSkipped)
      reason = MixedSwitchReason::kBudget;
  }

  // ----------------------------------------------------------- promotion.
  // V is promoted to double and re-orthonormalized (the float V's columns
  // are orthonormal only to binary32 precision; left uncorrected that
  // error would bound the final accuracy).  D is then *recomputed* in full
  // double precision from the original, unscaled columns:
  // D = (A V)^T (A V), which both erases the float-phase rounding of D and
  // transfers the float phase's progress exactly — D's off-diagonal mass
  // is small because A V's columns are nearly orthogonal, not because a
  // float recurrence says so.
  Matrix v(n, n);
  if (float_sweeps > 0) {
    for (std::size_t c = 0; c < n; ++c) {
      const auto src = v32.col(c);
      auto dst = v.col(c);
      for (std::size_t r = 0; r < n; ++r)
        dst[r] = static_cast<double>(src[r]);
    }
    detail::orthonormalize_columns(v, opsd);
  } else {
    v = Matrix::identity(n);
  }

  obs::Span regram_span;
  if (trace != nullptr)
    regram_span = obs::Span(
        trace, tid, "svd", "gram",
        obs::ArgsBuilder().add("rows", m).add("cols", n).str());
  const Matrix b = float_sweeps > 0 ? matmul(a, v) : a;
  Matrix d = gram_upper_ops(b, opsd, cfg.base.gram_chunk_rows);
  regram_span.end();
  const double offdiag_after_recompute = max_relative_offdiag(d);

  // ---------------------------------------------------------- double
  // refinement: ordinary modified-Hestenes sweeps on the recomputed D,
  // continuing to accumulate rotations into the same V.
  SvdResult result;
  std::size_t double_sweeps = 0;
  std::uint64_t total_rotations = 0, total_skipped = 0;
  for (std::size_t sweep = 0; sweep < cfg.base.max_sweeps; ++sweep) {
    obs::Span sweep_span;
    if (trace != nullptr)
      sweep_span = obs::Span(
          trace, tid, "svd", "sweep",
          obs::ArgsBuilder().add("sweep", float_sweeps + sweep).str());
    std::uint64_t rotations = 0, skipped = 0;
    for (const auto& [i, j] : pairs) {
      if (numerics != nullptr && numerics->want(pair_seq))
        numerics->observe_pair(d(i, i), d(j, j), d(i, j));
      ++pair_seq;
      if (detail::apply_pair(d, &v, cfg.base, i, j, opsd)) {
        ++rotations;
      } else {
        ++skipped;
      }
    }
    ++double_sweeps;
    total_rotations += rotations;
    total_skipped += skipped;
    if (stats != nullptr) {
      stats->sweeps.total_rotations += rotations;
      stats->sweeps.total_skipped += skipped;
      if (cfg.base.track_convergence)
        stats->sweeps.sweeps.push_back(
            detail::make_record(d, rotations, skipped));
    }
    detail::record_sweep_metrics(metrics, watchdog, deadline, numerics,
                                 float_sweeps + sweep, d, rotations, skipped);
    if (cfg.base.tolerance > 0.0 &&
        max_relative_offdiag(d) < cfg.base.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = float_sweeps + double_sweeps;
  if (cfg.base.tolerance == 0.0) {
    // Fixed-sweep mode: same default check as the all-double engine.
    result.converged = max_relative_offdiag(d) < 1e-10;
  }

  // Finalization reuses the all-double path verbatim: by the invariant
  // D = V^T A^T A V, (d, v) at this point are exactly what an all-double
  // run would hand over, so sqrt/sort/U-formation need no mixed-specific
  // handling.  cfg.base.compute_u/v decide what gets gathered; V was
  // accumulated unconditionally because the promotion-time Gram recompute
  // needs it even for a values-only run.
  obs::Span finalize_span;
  if (trace != nullptr)
    finalize_span = obs::Span(trace, tid, "svd", "finalize");
  detail::finalize_gram_result(a, d, v, cfg.base, result, opsd);
  finalize_span.end();
  if (numerics != nullptr) numerics->observe_finalize(a, result);

  detail::record_run_metrics(metrics, m, n, result.sweeps, total_rotations,
                             total_skipped, result.converged);
  if (metrics != nullptr) {
    metrics->gauge_set("svd.mp.float_sweeps", "sweeps",
                       static_cast<double>(float_sweeps));
    metrics->gauge_set("svd.mp.double_sweeps", "sweeps",
                       static_cast<double>(double_sweeps));
    metrics->gauge_set("svd.mp.switch_sweep", "sweeps",
                       static_cast<double>(float_sweeps));
    metrics->gauge_set("svd.mp.switch_threshold", "1", cfg.switch_threshold);
    metrics->gauge_set("svd.mp.switch_reason", "enum",
                       static_cast<double>(reason));
    metrics->gauge_set("svd.mp.offdiag_at_switch", "1", offdiag_at_switch);
    metrics->gauge_set("svd.mp.offdiag_after_recompute", "1",
                       offdiag_after_recompute);
  }
  if (stats != nullptr) {
    stats->float_sweeps = float_sweeps;
    stats->double_sweeps = double_sweeps;
    stats->switch_reason = reason;
    stats->offdiag_at_switch = offdiag_at_switch;
    stats->offdiag_after_recompute = offdiag_after_recompute;
  }
  return result;
}

}  // namespace hjsvd

// Per-worker scratch arena of the Hestenes-family engines.
//
// A long-lived decomposition service (tools/hjsvd_serve.cpp) runs the same
// engine thousands of times on similarly-shaped inputs; without reuse every
// request pays a fresh Gram matrix, rotation accumulator and finalization
// buffer.  A Workspace keeps one Matrix per well-known slot and re-shapes it
// in place (Matrix::reshape) on each acquire: after the first request of a
// given size the hot path performs zero heap allocations, which
// EngineInstance surfaces as the serve.workspace.reuse_total counter.
//
// Determinism contract: acquire() returns a *zeroed* matrix of the exact
// requested shape, indistinguishable from a freshly constructed one, so
// every engine result is bitwise identical with and without a workspace
// attached (tests/svd/test_workspace.cpp asserts this).
//
// Not thread-safe — one Workspace per worker thread, by construction
// (EngineInstance owns one per pool worker plus one for the calling
// thread).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "linalg/matrix.hpp"

namespace hjsvd {

class Workspace {
 public:
  /// Well-known scratch buffers.  One engine run touches each slot at most
  /// once, so slots never alias within a run.
  enum class Slot : std::size_t {
    kGram = 0,   ///< Cached covariance matrix D = A^T A (n x n).
    kVAccum,     ///< Accumulated rotation product V (n x n, identity-seeded).
    kVSorted,    ///< Singular vectors gathered in descending-sigma order —
                 ///< only when V itself does not escape into the result.
    kFinalizeB,  ///< B = A * V_sorted of the U = B * Sigma^-1 finalization.
    kCount,
  };

  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Returns the slot's matrix re-shaped to rows x cols with every entry
  /// zero.  Counts a reuse when the underlying buffer was retained and an
  /// allocation when it had to grow.
  Matrix& acquire(Slot slot, std::size_t rows, std::size_t cols) {
    Matrix& m = slots_[static_cast<std::size_t>(slot)];
    if (m.reshape(rows, cols)) {
      ++reuse_total_;
    } else {
      ++alloc_total_;
    }
    return m;
  }

  /// Acquires spent with the buffer retained (no allocation).
  std::uint64_t reuse_total() const { return reuse_total_; }
  /// Acquires that had to grow the buffer (cold path: first request of a
  /// size class).  Stable alloc_total with growing reuse_total is the
  /// "hot path is allocation-free" signal the serve tests assert on.
  std::uint64_t alloc_total() const { return alloc_total_; }

  /// Drops every buffer (frees the memory) and zeroes the counters.
  void clear() {
    for (auto& m : slots_) m = Matrix();
    reuse_total_ = 0;
    alloc_total_ = 0;
  }

 private:
  std::array<Matrix, static_cast<std::size_t>(Slot::kCount)> slots_;
  std::uint64_t reuse_total_ = 0;
  std::uint64_t alloc_total_ = 0;
};

}  // namespace hjsvd

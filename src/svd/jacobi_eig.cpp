#include "svd/jacobi_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hjsvd {
namespace {

/// Max |off-diagonal| / max |diagonal| of a symmetric matrix (full storage).
double offdiag_ratio(const Matrix& a) {
  double max_diag = 0.0, max_off = 0.0;
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    max_diag = std::max(max_diag, std::abs(a(i, i)));
    for (std::size_t j = i + 1; j < n; ++j)
      max_off = std::max(max_off, std::abs(a(i, j)));
  }
  if (max_diag == 0.0) return max_off == 0.0 ? 0.0 : INFINITY;
  return max_off / max_diag;
}

/// One symmetric Jacobi rotation annihilating a(p, q), maintaining full
/// symmetric storage; optionally accumulates the rotation into V.
void rotate_symmetric(Matrix& a, Matrix* v, std::size_t p, std::size_t q) {
  const double apq = a(p, q);
  if (apq == 0.0) return;
  const double app = a(p, p);
  const double aqq = a(q, q);
  // Rutishauser's stable formulas.
  const double theta = (aqq - app) / (2.0 * apq);
  const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(1.0 + theta * theta));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const double tau = s / (1.0 + c);

  a(p, p) = app - t * apq;
  a(q, q) = aqq + t * apq;
  a(p, q) = 0.0;
  a(q, p) = 0.0;
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    if (k == p || k == q) continue;
    const double akp = a(k, p);
    const double akq = a(k, q);
    const double new_kp = akp - s * (akq + tau * akp);
    const double new_kq = akq + s * (akp - tau * akq);
    a(k, p) = a(p, k) = new_kp;
    a(k, q) = a(q, k) = new_kq;
  }
  if (v != nullptr) {
    auto vp = v->col(p);
    auto vq = v->col(q);
    for (std::size_t k = 0; k < n; ++k) {
      const double x = vp[k];
      const double y = vq[k];
      vp[k] = x - s * (y + tau * x);
      vq[k] = y + s * (x - tau * y);
    }
  }
}

}  // namespace

EigResult jacobi_eigendecomposition(const Matrix& a,
                                    const JacobiEigConfig& cfg) {
  const std::size_t n = a.rows();
  HJSVD_ENSURE(n > 0 && a.cols() == n, "matrix must be square");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  // Validate symmetry (relative to the matrix scale).
  double scale = 0.0;
  for (double x : a.data()) scale = std::max(scale, std::abs(x));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      HJSVD_ENSURE(std::abs(a(i, j) - a(j, i)) <= 1e-12 * (scale + 1.0),
                   "matrix must be symmetric");

  Matrix w = a;
  Matrix v;
  if (cfg.compute_vectors) v = Matrix::identity(n);
  const auto pairs = sweep_pairs(cfg.ordering, n);

  EigResult result;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    for (const auto& [p, q] : pairs)
      rotate_symmetric(w, cfg.compute_vectors ? &v : nullptr, p, q);
    ++result.sweeps;
    if (offdiag_ratio(w) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return w(x, x) > w(y, y);
  });
  result.eigenvalues.resize(n);
  for (std::size_t t = 0; t < n; ++t) result.eigenvalues[t] = w(order[t], order[t]);
  if (cfg.compute_vectors) {
    result.eigenvectors = Matrix(n, n);
    for (std::size_t t = 0; t < n; ++t) {
      const auto src = v.col(order[t]);
      auto dst = result.eigenvectors.col(t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return result;
}

}  // namespace hjsvd

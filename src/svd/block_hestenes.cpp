#include "svd/block_hestenes.hpp"

#include <algorithm>
#include <numeric>

#include "fp/ops.hpp"
#include "linalg/kernels.hpp"
#include "svd/hestenes_impl.hpp"  // detail::rotate_columns
#include "svd/obs_hooks.hpp"
#include "svd/ordering.hpp"
#include "svd/rotation.hpp"

namespace hjsvd {
namespace {

/// Column indices of block b under a fixed block partition.
struct BlockRange {
  std::size_t begin, end;
};

std::vector<BlockRange> partition(std::size_t n, std::size_t block) {
  std::vector<BlockRange> out;
  for (std::size_t b = 0; b < n; b += block)
    out.push_back({b, std::min(n, b + block)});
  return out;
}

/// Orthogonalizes every column pair inside [lo1, hi1) U [lo2, hi2) with
/// row-cyclic order, rotating R (and V).  Returns rotations applied.
std::uint64_t orthogonalize_union(Matrix& r, Matrix* v, BlockRange b1,
                                  BlockRange b2, RotationFormula formula,
                                  std::size_t inner_sweeps,
                                  std::uint64_t& skipped) {
  const fp::NativeOps ops;
  std::vector<std::size_t> cols;
  for (std::size_t c = b1.begin; c < b1.end; ++c) cols.push_back(c);
  if (b2.begin != b1.begin)
    for (std::size_t c = b2.begin; c < b2.end; ++c) cols.push_back(c);

  std::uint64_t rotations = 0;
  for (std::size_t pass = 0; pass < inner_sweeps; ++pass) {
    for (std::size_t a = 0; a + 1 < cols.size(); ++a) {
      for (std::size_t b = a + 1; b < cols.size(); ++b) {
        const std::size_t i = cols[a];
        const std::size_t j = cols[b];
        const double nii = squared_norm(r.col(i));
        const double njj = squared_norm(r.col(j));
        const double cov = dot(r.col(i), r.col(j));
        const RotationParams p = compute_rotation(formula, njj, nii, cov, ops);
        if (!p.rotate) {
          ++skipped;
          continue;
        }
        detail::rotate_columns(r, i, j, p.cos, p.sin, ops);
        if (v != nullptr) detail::rotate_columns(*v, i, j, p.cos, p.sin, ops);
        ++rotations;
      }
    }
  }
  return rotations;
}

}  // namespace

SvdResult block_hestenes_svd(const Matrix& a, const BlockHestenesConfig& cfg,
                             HestenesStats* stats) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  HJSVD_ENSURE(cfg.block_size > 0, "block size must be positive");
  HJSVD_ENSURE(cfg.max_sweeps > 0 && cfg.inner_sweeps > 0,
               "need at least one sweep");

  Matrix r = a;
  const bool need_v = cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);
  if (stats != nullptr) *stats = HestenesStats{};

  const auto blocks = partition(n, cfg.block_size);
  // Block-level round-robin: every block pair once per sweep; with a single
  // block, one self-visit covers all pairs.
  std::vector<Pair> block_pairs;
  if (blocks.size() == 1) {
    block_pairs.emplace_back(0, 0);
  } else {
    block_pairs = sweep_pairs(Ordering::kRoundRobin, blocks.size());
  }

  SvdResult result;
  std::size_t sweeps_done = 0;
  std::uint64_t total_rotations = 0, total_skipped = 0;
  auto* metrics = obs::active(cfg.obs.metrics);
  auto* watchdog = obs::active(cfg.obs.watchdog);
  auto* deadline = obs::active(cfg.obs.deadline);
  // Per-pair values are internal to orthogonalize_union, so the block
  // engine feeds the probe at sweep/finalize granularity only.
  auto* numerics = obs::active(cfg.obs.numerics);
  const fp::NativeOps ops;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    std::uint64_t rotations = 0, skipped = 0;
    for (const auto& [bi, bj] : block_pairs) {
      rotations += orthogonalize_union(r, need_v ? &v : nullptr, blocks[bi],
                                       blocks[bj], cfg.formula,
                                       cfg.inner_sweeps, skipped);
    }
    ++sweeps_done;
    total_rotations += rotations;
    total_skipped += skipped;
    Matrix d;
    const bool need_gram = (stats != nullptr && cfg.track_convergence) ||
                           metrics != nullptr || watchdog != nullptr ||
                           numerics != nullptr || cfg.tolerance > 0.0;
    if (need_gram) d = gram_upper_ops(r, ops);
    detail::record_sweep_metrics(metrics, watchdog, deadline, numerics, sweep, d,
                                 rotations, skipped);
    if (stats != nullptr) {
      stats->total_rotations += rotations;
      stats->total_skipped += skipped;
      if (cfg.track_convergence)
        stats->sweeps.push_back(detail::make_record(d, rotations, skipped));
    }
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged = max_relative_offdiag(gram_upper_ops(r, ops)) < 1e-10;
  }
  detail::record_run_metrics(metrics, m, n, sweeps_done, total_rotations,
                             total_skipped, result.converged);

  // Extraction identical to the plain variant: B = R = U * Sigma.
  const std::size_t k = std::min(m, n);
  std::vector<double> norms(n);
  // col_norm guards the squared sum against overflow/underflow and is
  // bitwise sqrt(squared_norm) in the normal range.
  for (std::size_t c = 0; c < n; ++c) norms[c] = col_norm(r.col(c));
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return norms[x] > norms[y];
  });
  result.singular_values.resize(k);
  for (std::size_t t = 0; t < k; ++t)
    result.singular_values[t] = norms[order[t]];

  const double sigma_max =
      result.singular_values.empty() ? 0.0 : result.singular_values[0];
  const double cutoff =
      sigma_max * static_cast<double>(std::max(m, n)) * 1e-15;
  if (cfg.compute_u) {
    result.u = Matrix(m, k);
    for (std::size_t t = 0; t < k; ++t) {
      const double sv = norms[order[t]];
      if (sv <= cutoff) continue;
      const auto bt = r.col(order[t]);
      auto ut = result.u.col(t);
      for (std::size_t row = 0; row < m; ++row) ut[row] = bt[row] / sv;
    }
  }
  if (need_v) {
    Matrix v_sorted(n, k);
    for (std::size_t t = 0; t < k; ++t) {
      const auto src = v.col(order[t]);
      auto dst = v_sorted.col(t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    result.v = std::move(v_sorted);
  }
  if (numerics != nullptr) numerics->observe_finalize(a, result);
  return result;
}

}  // namespace hjsvd

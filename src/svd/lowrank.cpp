#include "svd/lowrank.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hjsvd {

Matrix low_rank_approximation(const SvdResult& svd, std::size_t k) {
  HJSVD_ENSURE(!svd.u.empty() && !svd.v.empty(),
               "low-rank approximation requires U and V");
  const std::size_t m = svd.u.rows();
  const std::size_t n = svd.v.rows();
  k = std::min(k, svd.singular_values.size());
  Matrix out(m, n);
  for (std::size_t t = 0; t < k; ++t) {
    const auto u = svd.u.col(t);
    const auto v = svd.v.col(t);
    const double s = svd.singular_values[t];
    for (std::size_t c = 0; c < n; ++c) {
      const double sv = s * v[c];
      if (sv == 0.0) continue;
      auto col = out.col(c);
      for (std::size_t r = 0; r < m; ++r) col[r] += u[r] * sv;
    }
  }
  return out;
}

double captured_energy(const SvdResult& svd, std::size_t k) {
  double total = 0.0, top = 0.0;
  k = std::min(k, svd.singular_values.size());
  for (std::size_t t = 0; t < svd.singular_values.size(); ++t) {
    const double sq = svd.singular_values[t] * svd.singular_values[t];
    total += sq;
    if (t < k) top += sq;
  }
  return total == 0.0 ? 1.0 : top / total;
}

std::size_t rank_for_energy(const SvdResult& svd, double fraction) {
  HJSVD_ENSURE(fraction > 0.0 && fraction <= 1.0,
               "energy fraction must be in (0, 1]");
  double total = 0.0;
  for (double s : svd.singular_values) total += s * s;
  if (total == 0.0) return 0;
  double cum = 0.0;
  for (std::size_t t = 0; t < svd.singular_values.size(); ++t) {
    cum += svd.singular_values[t] * svd.singular_values[t];
    if (cum >= fraction * total) return t + 1;
  }
  return svd.singular_values.size();
}

}  // namespace hjsvd

// Template implementation of the plain (recomputing) Hestenes-Jacobi SVD.
// Included by plain_hestenes.cpp and fixed_hestenes.cpp for their
// respective explicit instantiations, and by parallel_sweep.cpp for the
// pair-parallel engine's shared finalization.
#pragma once

#include "svd/plain_hestenes.hpp"

#include <algorithm>
#include <numeric>

#include "linalg/kernels.hpp"
#include "svd/hestenes_impl.hpp"  // rotate_columns, dot_ops, gram_upper_ops

namespace hjsvd {
namespace detail {

/// Shared finalization of the column-rotating paths: singular values are the
/// 2-norms of the converged B = U * Sigma (in `r`), sorted descending; U is
/// the normalized columns of B re-orthogonalized and completed from the
/// null space (orthonormalize_columns, shared with the Gram path), and V is
/// gathered from the accumulated rotation product.
template <class Ops>
void finalize_column_result(const Matrix& r, Matrix& v,
                            const HestenesConfig& cfg, SvdResult& result,
                            Ops ops) {
  const std::size_t m = r.rows();
  const std::size_t n = r.cols();
  const std::size_t k = std::min(m, n);
  std::vector<double> norms(n);
  for (std::size_t c = 0; c < n; ++c) {
    if constexpr (std::is_same_v<Ops, fp::NativeOps>) {
      // Overflow/underflow-guarded: bitwise sqrt(squared_norm) whenever the
      // squared sum is a normal double, scaled accumulation otherwise.
      norms[c] = col_norm(r.col(c));
    } else {
      const double sq = dot_ops<Ops>(r.col(c), r.col(c), ops);
      norms[c] = sq > 0.0 ? ops.sqrt(sq) : 0.0;
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });
  result.singular_values.resize(k);
  for (std::size_t t = 0; t < k; ++t)
    result.singular_values[t] = norms[order[t]];

  const double sigma_max =
      result.singular_values.empty() ? 0.0 : result.singular_values[0];
  const double cutoff = sigma_max * static_cast<double>(std::max(m, n)) * 1e-15;
  if (cfg.compute_u) {
    result.u = Matrix(m, k);
    for (std::size_t t = 0; t < k; ++t) {
      const double sv = norms[order[t]];
      if (sv <= cutoff) continue;
      const auto bt = r.col(order[t]);
      auto ut = result.u.col(t);
      for (std::size_t row = 0; row < m; ++row) ut[row] = bt[row] / sv;
    }
    // Same re-orthogonalization + null-space completion as the Gram path:
    // columns skipped above (numerically zero singular values) would
    // otherwise stay zero vectors, and the normalized columns are only
    // orthogonal to eps * kappa(A).
    orthonormalize_columns(result.u, ops);
  }
  if (cfg.compute_v) {
    Matrix v_sorted(n, k);
    for (std::size_t t = 0; t < k; ++t) {
      const auto src = v.col(order[t]);
      auto dst = v_sorted.col(t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    result.v = std::move(v_sorted);
  }
}

}  // namespace detail

template <class Ops>
SvdResult plain_hestenes_svd_t(const Matrix& a, const HestenesConfig& cfg,
                               HestenesStats* stats, Ops ops) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");

  Matrix r = a;  // columns converge to B = U * Sigma
  const bool need_v = cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);

  const auto pairs = sweep_pairs(cfg.ordering, n);
  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};
  auto* metrics = obs::active(cfg.obs.metrics);
  auto* watchdog = obs::active(cfg.obs.watchdog);
  auto* deadline = obs::active(cfg.obs.deadline);
  auto* numerics = obs::active(cfg.obs.numerics);

  std::size_t sweeps_done = 0;
  std::uint64_t total_rotations = 0, total_skipped = 0;
  std::uint64_t pair_seq = 0;  // numerics-probe sampling index
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    std::uint64_t rotations = 0, skipped = 0;
    for (const auto& [i, j] : pairs) {
      // Recompute norms and covariance from the column data every time —
      // the "duplicated computations" the modified algorithm eliminates.
      const double norm_ii =
          detail::dot_maybe_relaxed<Ops>(r.col(i), r.col(i), cfg, ops);
      const double norm_jj =
          detail::dot_maybe_relaxed<Ops>(r.col(j), r.col(j), cfg, ops);
      const double cov =
          detail::dot_maybe_relaxed<Ops>(r.col(i), r.col(j), cfg, ops);
      if (numerics != nullptr && numerics->want(pair_seq))
        numerics->observe_pair(norm_ii, norm_jj, cov);
      ++pair_seq;
      if (detail::below_threshold(cov, norm_ii, norm_jj,
                                  cfg.rotation_threshold)) {
        ++skipped;
        continue;
      }
      const RotationParams p =
          compute_rotation(cfg.formula, norm_jj, norm_ii, cov, ops);
      if (!p.rotate) {
        ++skipped;
        continue;
      }
      detail::rotate_columns(r, i, j, p.cos, p.sin, ops);
      if (need_v) detail::rotate_columns(v, i, j, p.cos, p.sin, ops);
      ++rotations;
    }
    ++sweeps_done;
    total_rotations += rotations;
    total_skipped += skipped;
    Matrix d;  // Gram matrix, built only when a convergence check needs it
    const bool need_gram = (stats != nullptr && cfg.track_convergence) ||
                           metrics != nullptr || watchdog != nullptr ||
                           numerics != nullptr || cfg.tolerance > 0.0;
    if (need_gram) d = detail::gram_upper_maybe_relaxed(r, cfg, ops);
    detail::record_sweep_metrics(metrics, watchdog, deadline, numerics, sweep, d,
                                 rotations, skipped);
    if (stats != nullptr) {
      stats->total_rotations += rotations;
      stats->total_skipped += skipped;
      if (cfg.track_convergence)
        stats->sweeps.push_back(detail::make_record(d, rotations, skipped));
    }
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged =
        max_relative_offdiag(detail::gram_upper_maybe_relaxed(r, cfg, ops)) <
        1e-10;
  }
  detail::record_run_metrics(metrics, m, n, sweeps_done, total_rotations,
                             total_skipped, result.converged);

  detail::finalize_column_result(r, v, cfg, result, ops);
  if (numerics != nullptr) numerics->observe_finalize(a, result);
  return result;
}

}  // namespace hjsvd

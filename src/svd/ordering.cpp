#include "svd/ordering.hpp"

#include "common/error.hpp"

namespace hjsvd {

std::vector<Pair> row_cyclic_sweep(std::size_t n) {
  std::vector<Pair> pairs;
  if (n < 2) return pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i + 1 < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  return pairs;
}

std::vector<std::vector<Pair>> round_robin_rounds(std::size_t n) {
  std::vector<std::vector<Pair>> rounds;
  if (n < 2) return rounds;
  // Circle method: slot 0 is fixed; the remaining n-1 (or n, with a bye
  // sentinel for odd n) indexes rotate one position per round.
  const std::size_t slots = n % 2 == 0 ? n : n + 1;
  const std::size_t bye = n;  // sentinel for odd n
  std::vector<std::size_t> ring(slots);
  for (std::size_t i = 0; i < slots; ++i) ring[i] = i < n ? i : bye;
  rounds.reserve(slots - 1);
  for (std::size_t r = 0; r + 1 < slots; ++r) {
    std::vector<Pair> round;
    round.reserve(slots / 2);
    for (std::size_t k = 0; k < slots / 2; ++k) {
      std::size_t a = ring[k];
      std::size_t b = ring[slots - 1 - k];
      if (a == bye || b == bye) continue;
      if (a > b) std::swap(a, b);
      round.emplace_back(a, b);
    }
    rounds.push_back(std::move(round));
    // Rotate positions 1..slots-1 by one.
    const std::size_t last = ring[slots - 1];
    for (std::size_t k = slots - 1; k > 1; --k) ring[k] = ring[k - 1];
    ring[1] = last;
  }
  return rounds;
}

std::vector<std::vector<Pair>> odd_even_rounds(std::size_t n) {
  std::vector<std::vector<Pair>> rounds;
  if (n < 2) return rounds;
  rounds.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<Pair> round;
    for (std::size_t i = r % 2; i + 1 < n; i += 2) round.emplace_back(i, i + 1);
    rounds.push_back(std::move(round));
  }
  return rounds;
}

std::vector<Pair> sweep_pairs(Ordering ordering, std::size_t n) {
  switch (ordering) {
    case Ordering::kRowCyclic:
      return row_cyclic_sweep(n);
    case Ordering::kRoundRobin: {
      std::vector<Pair> flat;
      for (auto& round : round_robin_rounds(n))
        flat.insert(flat.end(), round.begin(), round.end());
      return flat;
    }
    case Ordering::kOddEven: {
      std::vector<Pair> flat;
      for (auto& round : odd_even_rounds(n))
        flat.insert(flat.end(), round.begin(), round.end());
      return flat;
    }
  }
  throw Error("unknown ordering");
}

std::vector<std::vector<Pair>> chunk_groups(const std::vector<Pair>& round,
                                            std::size_t group_size) {
  HJSVD_ENSURE(group_size > 0, "group size must be positive");
  std::vector<std::vector<Pair>> groups;
  for (std::size_t begin = 0; begin < round.size(); begin += group_size) {
    const std::size_t end = std::min(begin + group_size, round.size());
    groups.emplace_back(round.begin() + begin, round.begin() + end);
  }
  return groups;
}

}  // namespace hjsvd

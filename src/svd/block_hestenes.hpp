// Block one-sided Jacobi SVD.
//
// The paper handles column counts beyond its on-chip covariance capacity by
// streaming D through off-chip memory (Section VI.A/B).  The software
// counterpart of that blocking is the classic block one-sided Jacobi:
// columns are partitioned into blocks; a sweep visits every *block pair*
// (round-robin over blocks, Fig. 6 one level up) and fully orthogonalizes
// the columns inside the union of the two blocks before moving on.  All
// O(b^2)-pair work happens on a working set of 2b columns — cache-sized on
// a CPU, BRAM-sized on the FPGA.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "obs/sinks.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {

struct BlockHestenesConfig {
  /// Columns per block (the working set is two blocks).
  std::size_t block_size = 32;
  std::size_t max_sweeps = 8;      // block sweeps (each visits all pairs)
  double tolerance = 0.0;          // early stop on max_relative_offdiag
  /// Inner orthogonalization passes over the 2b-column working set per
  /// block-pair visit.
  std::size_t inner_sweeps = 1;
  RotationFormula formula = RotationFormula::kHardware;
  bool compute_u = false;
  bool compute_v = false;
  bool track_convergence = false;
  /// Optional observability sinks; with a metrics registry attached the
  /// engine records the same svd.sweep.* convergence series and svd.*
  /// run summary as every other Hestenes engine (src/svd/obs_hooks.hpp).
  obs::ObsContext obs{};
};

/// Block one-sided Jacobi SVD of an arbitrary m x n matrix.
SvdResult block_hestenes_svd(const Matrix& a,
                             const BlockHestenesConfig& cfg = {},
                             HestenesStats* stats = nullptr);

}  // namespace hjsvd

#include "svd/pca.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hjsvd {

PcaModel pca_fit(const Matrix& data, const PcaConfig& cfg) {
  const std::size_t m = data.rows();
  const std::size_t n = data.cols();
  HJSVD_ENSURE(m >= 2, "PCA needs at least two samples");
  PcaModel model;
  model.samples = m;

  Matrix centered = data;
  if (cfg.center) {
    model.mean.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      auto col = centered.col(j);
      double mu = 0.0;
      for (double v : col) mu += v;
      mu /= static_cast<double>(m);
      model.mean[j] = mu;
      for (double& v : col) v -= mu;
    }
  }

  HestenesConfig svd_cfg = cfg.svd;
  svd_cfg.compute_u = false;
  svd_cfg.compute_v = true;
  const SvdResult svd = modified_hestenes_svd(centered, svd_cfg);

  const std::size_t k_all = svd.singular_values.size();
  const std::size_t k =
      cfg.components == 0 ? k_all : std::min(cfg.components, k_all);
  model.singular_values.assign(svd.singular_values.begin(),
                               svd.singular_values.begin() + k);
  model.components = Matrix(n, k);
  for (std::size_t t = 0; t < k; ++t) {
    const auto src = svd.v.col(t);
    auto dst = model.components.col(t);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  model.explained_variance.resize(k);
  double total = 0.0;
  for (double s : svd.singular_values) total += s * s;
  model.explained_variance_ratio.resize(k);
  for (std::size_t t = 0; t < k; ++t) {
    const double s = model.singular_values[t];
    model.explained_variance[t] = s * s / static_cast<double>(m - 1);
    model.explained_variance_ratio[t] = total > 0.0 ? s * s / total : 0.0;
  }
  return model;
}

Matrix pca_transform(const PcaModel& model, const Matrix& data) {
  HJSVD_ENSURE(data.cols() == model.components.rows(),
               "feature count mismatch with the fitted model");
  Matrix centered = data;
  if (!model.mean.empty()) {
    for (std::size_t j = 0; j < centered.cols(); ++j) {
      auto col = centered.col(j);
      for (double& v : col) v -= model.mean[j];
    }
  }
  return matmul(centered, model.components);
}

Matrix pca_inverse_transform(const PcaModel& model, const Matrix& scores) {
  HJSVD_ENSURE(scores.cols() == model.components.cols(),
               "score width must match the model's component count");
  Matrix out = matmul(scores, model.components.transposed());
  if (!model.mean.empty()) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      auto col = out.col(j);
      for (double& v : col) v += model.mean[j];
    }
  }
  return out;
}

std::size_t pca_components_for_variance(const PcaModel& model,
                                        double fraction) {
  HJSVD_ENSURE(fraction > 0.0 && fraction <= 1.0,
               "variance fraction must be in (0, 1]");
  double cum = 0.0;
  for (std::size_t k = 0; k < model.explained_variance_ratio.size(); ++k) {
    cum += model.explained_variance_ratio[k];
    if (cum >= fraction) return k + 1;
  }
  return model.explained_variance_ratio.size();
}

}  // namespace hjsvd

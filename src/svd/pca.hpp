// Principal Component Analysis on top of the Hestenes-Jacobi SVD — the
// application the paper's introduction motivates (SVD-based PCA for
// dimensionality reduction in image processing, computer vision, video
// surveillance) and its stated future work (PCA for latent semantic
// indexing).
//
// Data layout: rows are observations/samples, columns are features.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {

struct PcaConfig {
  /// Number of principal components to keep; 0 = all min(m, n).
  std::size_t components = 0;
  /// Subtract the per-feature mean before decomposing (standard PCA).
  bool center = true;
  /// SVD solver settings (defaults iterate to near machine precision
  /// rather than the hardware's fixed 6 sweeps).
  HestenesConfig svd{.max_sweeps = 30, .tolerance = 1e-13};
};

struct PcaModel {
  std::vector<double> mean;            // per-feature mean (empty if !center)
  Matrix components;                   // features x k, orthonormal columns
  std::vector<double> singular_values; // of the centered data, descending
  std::vector<double> explained_variance;        // sigma^2 / (m - 1)
  std::vector<double> explained_variance_ratio;  // fraction of total
  std::size_t samples = 0;
};

/// Fits a PCA model to `data` (samples x features).
PcaModel pca_fit(const Matrix& data, const PcaConfig& cfg = {});

/// Projects data into the principal subspace: returns samples x k scores.
Matrix pca_transform(const PcaModel& model, const Matrix& data);

/// Reconstructs data from scores: returns samples x features.
Matrix pca_inverse_transform(const PcaModel& model, const Matrix& scores);

/// Smallest k whose cumulative explained-variance ratio reaches `fraction`.
std::size_t pca_components_for_variance(const PcaModel& model,
                                        double fraction);

}  // namespace hjsvd

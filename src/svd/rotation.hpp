// Jacobi rotation parameter generation.
//
// Given the squared 2-norms of two columns and their covariance, produce the
// (t, cos, sin) that makes the rotated columns orthogonal:
//
//   A_i' = A_i*cos - A_j*sin        (paper eq. 11)
//   A_j' = A_i*sin + A_j*cos        (paper eq. 12)
//
// Two algebraically equivalent forms are provided:
//  * the textbook form of Algorithm 1 lines 11-14 (rho -> t -> cos -> sin),
//  * the hardware closed form of eqs. (8)-(10) that the rotation component
//    evaluates (no division by the possibly tiny covariance).
//
// ERRATUM (documented in DESIGN.md): Algorithm 1 line 11 prints
// rho = (norm2 - norm1)/(2 cov) with norm1 = D_jj, norm2 = D_ii; for the
// annihilation condition of the rotation direction in eqs. (11)-(12) and the
// norm updates D_jj += t*cov, D_ii -= t*cov of lines 15-16 to hold, the sign
// must be rho = (D_jj - D_ii)/(2 cov).  One can verify:
//   d_ij' = cos*sin*(d_ii - d_jj) + (cos^2 - sin^2) d_ij = 0
//   <=> (1 - t^2)/t = (d_jj - d_ii)/d_ij  <=>  t^2 + 2*rho*t - 1 = 0
// whose small root is t = sign(rho)/(|rho| + sqrt(1 + rho^2)), and then
// d_jj' = d_jj + t*d_ij, d_ii' = d_ii - t*d_ij (trace preserved).  We
// implement the self-consistent version; the hardware closed form (8)-(10)
// is sign-agnostic in magnitude and gets sign(t) = sign(rho) attached, which
// matches the "(sign)" annotation in eq. (10).
#pragma once

#include <cstddef>

#include "fp/ops.hpp"

namespace hjsvd {

/// Which algebraic form generates (t, cos, sin).
enum class RotationFormula {
  kTextbook,  // Algorithm 1 lines 11-14 (sign-corrected, see erratum)
  kHardware,  // closed forms of eqs. (8)-(10), as the FPGA evaluates them
};

/// Rotation angle parameters for one column pair.
struct RotationParams {
  double t = 0.0;
  double cos = 1.0;
  double sin = 0.0;
  bool rotate = false;  // false when cov == 0 (already orthogonal: identity)
};

namespace detail {

inline double flip_sign_if(double x, bool negative) {
  return negative ? -x : x;
}

}  // namespace detail

/// Algorithm 1 lines 11-14 (with the erratum's sign fix).
/// norm_jj = D(j,j), norm_ii = D(i,i), cov = D(i,j).
template <class Ops>
RotationParams rotation_textbook(double norm_jj, double norm_ii, double cov,
                                 Ops ops) {
  RotationParams p;
  if (cov == 0.0) return p;
  p.rotate = true;
  // rho = (D_jj - D_ii) / (2*cov); the doubling is an exponent bump.
  const double diff = ops.sub(norm_jj, norm_ii);
  const double rho = ops.div(diff, 2.0 * cov);
  // t = sign(rho) / (|rho| + sqrt(1 + rho^2))
  const double rho2 = ops.mul(rho, rho);
  const double root = ops.sqrt(ops.add(1.0, rho2));
  const double abs_rho = rho < 0.0 ? -rho : rho;
  const double t_mag = ops.div(1.0, ops.add(abs_rho, root));
  p.t = detail::flip_sign_if(t_mag, rho < 0.0);
  // cos = 1 / sqrt(1 + t^2); sin = cos * t
  const double t2 = ops.mul(p.t, p.t);
  p.cos = ops.div(1.0, ops.sqrt(ops.add(1.0, t2)));
  p.sin = ops.mul(p.cos, p.t);
  return p;
}

/// Hardware closed form, eqs. (8)-(10).  Avoids dividing by the covariance,
/// which is the numerically delicate quantity near convergence.
template <class Ops>
RotationParams rotation_hardware(double norm_jj, double norm_ii, double cov,
                                 Ops ops) {
  RotationParams p;
  if (cov == 0.0) return p;
  p.rotate = true;
  // With n1 = D_jj, n2 = D_ii the paper's eq. (8) uses |n2 - n1|, which
  // equals |diff| either way; the sign of t is sign(rho) = sign(diff * cov).
  const double diff = ops.sub(norm_jj, norm_ii);
  const double abs_diff = diff < 0.0 ? -diff : diff;
  const double abs_cov = cov < 0.0 ? -cov : cov;
  const bool t_negative = (diff < 0.0) != (cov < 0.0);
  const double d2 = ops.mul(diff, diff);
  const double c2 = ops.mul(cov, cov);
  const double s = ops.add(d2, 4.0 * c2);       // (n2-n1)^2 + 4 c^2
  const double r = ops.sqrt(s);                  // sqrt of the above
  // eq. (8): t = |2c| / (|n2-n1| + sqrt(...))
  const double t_mag = ops.div(2.0 * abs_cov, ops.add(abs_diff, r));
  p.t = detail::flip_sign_if(t_mag, t_negative);
  // eqs. (9)-(10): shared subexpressions
  const double adr = ops.mul(abs_diff, r);
  const double den = ops.add(s, adr);            // d2 + 4c^2 + |d|*r
  const double num = ops.add(ops.add(d2, 2.0 * c2), adr);
  p.cos = ops.sqrt(ops.div(num, den));
  const double sin_mag = ops.sqrt(ops.div(2.0 * c2, den));
  p.sin = detail::flip_sign_if(sin_mag, t_negative);
  return p;
}

/// Dispatch on the configured formula.
template <class Ops>
RotationParams compute_rotation(RotationFormula formula, double norm_jj,
                                double norm_ii, double cov, Ops ops) {
  return formula == RotationFormula::kTextbook
             ? rotation_textbook(norm_jj, norm_ii, cov, ops)
             : rotation_hardware(norm_jj, norm_ii, cov, ops);
}

}  // namespace hjsvd

// Forwarding header: the rotation-parameter kernels moved to
// linalg/rotation.hpp so the SIMD layer (linalg/simd/) can instantiate them
// without depending on the svd/ layer.  Kept so existing includes — and the
// pairing with the fp:: arithmetic policies that every caller of this header
// uses — continue to work.
#pragma once

#include "fp/ops.hpp"
#include "linalg/rotation.hpp"

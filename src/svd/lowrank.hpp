// Low-rank approximation utilities on top of an SVD result — the
// dimensionality-reduction operations the paper's introduction motivates.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"

namespace hjsvd {

/// Rank-k reconstruction sum_{t<k} sigma_t u_t v_t^T.  Requires U and V in
/// the result; k is clamped to the available spectrum.
Matrix low_rank_approximation(const SvdResult& svd, std::size_t k);

/// Fraction of squared Frobenius norm captured by the top-k values:
/// sum_{t<k} sigma_t^2 / sum_t sigma_t^2 (1.0 for an empty spectrum).
double captured_energy(const SvdResult& svd, std::size_t k);

/// Smallest k capturing at least `fraction` of the squared Frobenius norm.
std::size_t rank_for_energy(const SvdResult& svd, double fraction);

}  // namespace hjsvd

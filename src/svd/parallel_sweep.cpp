#include "svd/parallel_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "linalg/kernels.hpp"
#include "svd/hestenes_impl.hpp"
#include "svd/obs_hooks.hpp"
#include "svd/plain_hestenes_impl.hpp"

namespace hjsvd {
namespace {

/// Seconds elapsed since t0 on the steady clock.
inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Writes the elapsed lifetime of a scope into *out at destruction (used
/// for whole-thread elapsed times; reads happen after join()).
class ScopeTimer {
 public:
  explicit ScopeTimer(double* out)
      : out_(out), t0_(std::chrono::steady_clock::now()) {}
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;
  ~ScopeTimer() { *out_ = seconds_since(t0_); }

 private:
  double* out_;
  std::chrono::steady_clock::time_point t0_;
};

/// Minimum stall duration worth a trace span.  Spin waits shorter than
/// this are invisible at any useful zoom level but arrive by the tens of
/// thousands on an oversubscribed host, bloating the trace and costing
/// measurable wall-clock just to record them; the *aggregate* stall time
/// is still exact — it accumulates into the pipeline.*.stall_s gauges
/// whether or not a span is emitted.
constexpr double kMinStallSpanUs = 50.0;

/// Sum of the first `sweeps` per-sweep totals (run-level rotation counts).
inline std::uint64_t total_rotations_of(const std::vector<std::uint64_t>& per,
                                        std::size_t sweeps) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < sweeps && s < per.size(); ++s) total += per[s];
  return total;
}

int resolve_threads(const ParallelSweepConfig& par) {
#ifdef _OPENMP
  return par.threads == 0 ? omp_get_max_threads()
                          : static_cast<int>(par.threads);
#else
  (void)par;
  return 1;
#endif
}

/// Update-worker count of the pipelined engine (usable without OpenMP —
/// the pipelined pool is plain std::thread).
std::size_t resolve_pool_threads(std::size_t requested) {
  if (requested != 0) return requested;
#ifdef _OPENMP
  return static_cast<std::size_t>(std::max(1, omp_get_max_threads()));
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
#endif
}

/// Canonical upper-triangle location of the covariance between x and y.
inline double& cov_at(Matrix& d, std::size_t x, std::size_t y) {
  return x < y ? d(x, y) : d(y, x);
}

/// One rotation's update of the covariance pair with free index k — the
/// same arithmetic detail::rotate_covariances performs for that k, via the
/// canonical storage locations (docs/ALGORITHM.md §4).
inline void update_cov_entry(Matrix& d, std::size_t k, std::size_t i,
                             std::size_t j, double c, double s,
                             fp::NativeOps ops) {
  double& di = cov_at(d, k, i);
  double& dj = cov_at(d, k, j);
  const double x = di;
  const double y = dj;
  di = ops.sub(ops.mul(x, c), ops.mul(y, s));
  dj = ops.add(ops.mul(x, s), ops.mul(y, c));
}

/// A round slot: one disjoint pair of the round, or one idle column (the
/// round-robin bye for odd n).  Pair slots come first, in round order — the
/// order the sequential algorithm applies the rotations in.
struct Slot {
  std::size_t cols[2];
  std::size_t count = 0;
};

/// Rotation parameters generated for a pair slot (identity when skipped).
struct SlotRotation {
  double c = 1.0;
  double s = 0.0;
  bool active = false;
};

/// Static decomposition of one round: slots plus the cross-task list.  A
/// task (a, b) owns every covariance entry with one index in slot a and one
/// in slot b, and applies slot a's rotation before slot b's — the order the
/// sequential sweep would touch those entries in.  Each entry of D belongs
/// to exactly one task (or to the serial diagonal step), so the schedule is
/// race-free and bitwise deterministic.
struct RoundPlan {
  std::vector<Slot> slots;
  std::size_t pair_slots = 0;  // slots [0, pair_slots) rotate
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tasks;
  std::vector<std::uint32_t> slot_of;  // column index -> slot index
};

RoundPlan plan_round(const std::vector<Pair>& round, std::size_t n) {
  RoundPlan plan;
  constexpr auto kUncovered = static_cast<std::uint32_t>(-1);
  plan.slot_of.assign(n, kUncovered);
  for (const auto& [i, j] : round) {
    Slot s;
    s.cols[0] = i;
    s.cols[1] = j;
    s.count = 2;
    plan.slot_of[i] = plan.slot_of[j] =
        static_cast<std::uint32_t>(plan.slots.size());
    plan.slots.push_back(s);
  }
  plan.pair_slots = plan.slots.size();
  for (std::size_t c = 0; c < n; ++c) {
    if (plan.slot_of[c] != kUncovered) continue;
    Slot s;
    s.cols[0] = c;
    s.count = 1;
    plan.slot_of[c] = static_cast<std::uint32_t>(plan.slots.size());
    plan.slots.push_back(s);
  }
  // Cross tasks: every slot pair with at least one rotating member.  Idle
  // slots pair only with rotating slots (an idle-idle block has no work).
  const std::size_t total = plan.slots.size();
  for (std::size_t a = 0; a < plan.pair_slots; ++a)
    for (std::size_t b = a + 1; b < total; ++b)
      plan.tasks.emplace_back(static_cast<std::uint32_t>(a),
                              static_cast<std::uint32_t>(b));
  return plan;
}

/// Index of task (a, b), a < b, in RoundPlan::tasks — inverts the
/// emplacement order of plan_round.
inline std::size_t task_index(const RoundPlan& plan, std::size_t a,
                              std::size_t b) {
  const std::size_t total = plan.slots.size();
  return a * total - a * (a + 1) / 2 + (b - a - 1);
}

/// Spins (with yields, falling back to short sleeps) until pred() holds.
/// Returns false — without waiting out pred — once stop is set, so every
/// pipeline wait unblocks when a peer thread fails.
template <class Pred>
bool spin_until(Pred&& pred, const std::atomic<bool>& stop) {
  for (int spins = 0; !pred(); ++spins) {
    if (stop.load(std::memory_order_acquire)) return false;
    if (spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  return true;
}

}  // namespace

SvdResult parallel_modified_hestenes_svd(const Matrix& a,
                                         const HestenesConfig& cfg,
                                         const ParallelSweepConfig& par,
                                         HestenesStats* stats) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  const fp::NativeOps ops;
  [[maybe_unused]] const int nt = resolve_threads(par);

  auto* trace = obs::active(cfg.obs.trace);
  auto* metrics = obs::active(cfg.obs.metrics);
  auto* watchdog = obs::active(cfg.obs.watchdog);
  auto* deadline = obs::active(cfg.obs.deadline);
  auto* numerics = obs::active(cfg.obs.numerics);
  const std::uint32_t tid =
      trace != nullptr ? trace->register_thread("blocked engine (coordinator)")
                       : 0;

  obs::Span gram_span;
  if (trace != nullptr)
    gram_span =
        obs::Span(trace, tid, "svd", "gram",
                  obs::ArgsBuilder().add("rows", m).add("cols", n).str());
  Matrix d = cfg.simd_relaxed && cfg.gram_chunk_rows == 1
                 ? gram_upper_relaxed(a)
                 : gram_upper_ops(a, ops, cfg.gram_chunk_rows);
  gram_span.end();
  const bool need_v = cfg.compute_u || cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);

  const auto rounds = round_robin_rounds(n);
  std::vector<RoundPlan> plans;
  plans.reserve(rounds.size());
  for (const auto& round : rounds) plans.push_back(plan_round(round, n));

  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};
  std::vector<SlotRotation> rot;
  // Scratch for the lockstep batched rotation generation (hardware formula
  // only): per-round compacted SoA inputs/outputs of the post-threshold
  // pair slots.
  std::vector<std::size_t> gen_slots;
  std::vector<double> batch_njj, batch_nii, batch_cov;
  std::vector<double> batch_t, batch_c, batch_s;
  std::vector<std::uint8_t> batch_rotate;

  std::size_t sweeps_done = 0;
  std::uint64_t total_rotations = 0, total_skipped = 0;
  std::uint64_t pair_seq = 0;  // numerics-probe sampling index
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    obs::Span sweep_span;
    if (trace != nullptr)
      sweep_span = obs::Span(trace, tid, "svd", "sweep",
                             obs::ArgsBuilder().add("sweep", sweep).str());
    std::uint64_t rotations = 0, skipped = 0;
    for (std::size_t r = 0; r < plans.size(); ++r) {
      const auto& plan = plans[r];
      obs::Span generate_span;
      if (trace != nullptr)
        generate_span =
            obs::Span(trace, tid, "pipeline", "generate",
                      obs::ArgsBuilder().add("round", r).str());
      // --- Rotation component (serial): parameters and diagonal updates.
      // Within a round no pair touches another pair's D(i,i), D(j,j) or
      // D(i,j), so generating every parameter up front reads exactly the
      // values the sequential sweep would.
      rot.assign(plan.slots.size(), SlotRotation{});
      if (cfg.formula == RotationFormula::kHardware) {
        // Lockstep batched generation (4 lanes per vector op when the AVX2
        // backend is active).  Within a round the pairs are disjoint and
        // each rotation only updates its own D(i,i), D(j,j), D(i,j), so
        // gathering every input before any update reads exactly the values
        // the serial loop would; lane arithmetic is bitwise
        // rotation_hardware<NativeOps>.  Threshold skips are compacted out
        // first so skip semantics (including a NaN inside a skipped pair)
        // match the serial loop; the batch validates its lanes lowest-first,
        // preserving the deterministic first-bad-pair error.
        gen_slots.clear();
        batch_njj.clear();
        batch_nii.clear();
        batch_cov.clear();
        for (std::size_t p = 0; p < plan.pair_slots; ++p) {
          const std::size_t i = plan.slots[p].cols[0];
          const std::size_t j = plan.slots[p].cols[1];
          const double cov = d(i, j);
          // The generate phase is serial and reads pre-update values:
          // exactly the sampling site the probe wants.
          if (numerics != nullptr && numerics->want(pair_seq))
            numerics->observe_pair(d(i, i), d(j, j), cov);
          ++pair_seq;
          if (detail::below_threshold(cov, d(i, i), d(j, j),
                                      cfg.rotation_threshold)) {
            ++skipped;
            continue;
          }
          gen_slots.push_back(p);
          batch_njj.push_back(d(j, j));
          batch_nii.push_back(d(i, i));
          batch_cov.push_back(cov);
        }
        batch_t.resize(gen_slots.size());
        batch_c.resize(gen_slots.size());
        batch_s.resize(gen_slots.size());
        batch_rotate.resize(gen_slots.size());
        rotation_hardware_batch(batch_njj, batch_nii, batch_cov, batch_t,
                                batch_c, batch_s, batch_rotate);
        for (std::size_t g = 0; g < gen_slots.size(); ++g) {
          // below_threshold already skipped cov == 0, so every lane rotates.
          const std::size_t p = gen_slots[g];
          const std::size_t i = plan.slots[p].cols[0];
          const std::size_t j = plan.slots[p].cols[1];
          const double tc = ops.mul(batch_t[g], batch_cov[g]);
          d(j, j) = ops.add(d(j, j), tc);  // Algorithm 1 line 15
          d(i, i) = ops.sub(d(i, i), tc);  // line 16
          d(i, j) = 0.0;                   // line 17
          rot[p] = SlotRotation{batch_c[g], batch_s[g], true};
          ++rotations;
        }
      } else {
        for (std::size_t p = 0; p < plan.pair_slots; ++p) {
          const std::size_t i = plan.slots[p].cols[0];
          const std::size_t j = plan.slots[p].cols[1];
          const double cov = d(i, j);
          if (numerics != nullptr && numerics->want(pair_seq))
            numerics->observe_pair(d(i, i), d(j, j), cov);
          ++pair_seq;
          if (detail::below_threshold(cov, d(i, i), d(j, j),
                                      cfg.rotation_threshold)) {
            ++skipped;
            continue;
          }
          const RotationParams rp =
              compute_rotation(cfg.formula, d(j, j), d(i, i), cov, ops);
          if (!rp.rotate) {
            ++skipped;
            continue;
          }
          const double tc = ops.mul(rp.t, cov);
          d(j, j) = ops.add(d(j, j), tc);  // Algorithm 1 line 15
          d(i, i) = ops.sub(d(i, i), tc);  // line 16
          d(i, j) = 0.0;                   // line 17
          rot[p] = SlotRotation{rp.cos, rp.sin, true};
          ++rotations;
        }
      }
      generate_span.end();

      // --- Update array (parallel): cross-block covariance updates.
      obs::Span update_span;
      if (trace != nullptr)
        update_span = obs::Span(trace, tid, "pipeline", "update",
                                obs::ArgsBuilder().add("round", r).str());
      const auto ntasks = static_cast<std::ptrdiff_t>(plan.tasks.size());
#pragma omp parallel for schedule(static) num_threads(nt)
      for (std::ptrdiff_t t = 0; t < ntasks; ++t) {
        const auto [sa, sb] = plan.tasks[static_cast<std::size_t>(t)];
        const Slot& slot_a = plan.slots[sa];
        const Slot& slot_b = plan.slots[sb];
        if (rot[sa].active) {
          for (std::size_t c = 0; c < slot_b.count; ++c)
            update_cov_entry(d, slot_b.cols[c], slot_a.cols[0],
                             slot_a.cols[1], rot[sa].c, rot[sa].s, ops);
        }
        if (sb < plan.pair_slots && rot[sb].active) {
          for (std::size_t c = 0; c < slot_a.count; ++c)
            update_cov_entry(d, slot_a.cols[c], slot_b.cols[0],
                             slot_b.cols[1], rot[sb].c, rot[sb].s, ops);
        }
      }

      // --- V accumulation (parallel): pairs own disjoint columns of V.
      if (need_v) {
        const auto npairs = static_cast<std::ptrdiff_t>(plan.pair_slots);
#pragma omp parallel for schedule(static) num_threads(nt)
        for (std::ptrdiff_t p = 0; p < npairs; ++p) {
          if (!rot[static_cast<std::size_t>(p)].active) continue;
          const Slot& s = plan.slots[static_cast<std::size_t>(p)];
          detail::rotate_columns(v, s.cols[0], s.cols[1],
                                 rot[static_cast<std::size_t>(p)].c,
                                 rot[static_cast<std::size_t>(p)].s, ops);
        }
      }
      update_span.end();
    }
    ++sweeps_done;
    total_rotations += rotations;
    total_skipped += skipped;
    if (stats != nullptr) {
      stats->total_rotations += rotations;
      stats->total_skipped += skipped;
      if (cfg.track_convergence)
        stats->sweeps.push_back(detail::make_record(d, rotations, skipped));
    }
    detail::record_sweep_metrics(metrics, watchdog, deadline, numerics, sweep, d,
                                 rotations, skipped);
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged = max_relative_offdiag(d) < 1e-10;
  }

  obs::Span finalize_span;
  if (trace != nullptr)
    finalize_span = obs::Span(trace, tid, "svd", "finalize");
  detail::finalize_gram_result(a, d, v, cfg, result, ops, cfg.workspace);
  finalize_span.end();
  if (numerics != nullptr) numerics->observe_finalize(a, result);
  detail::record_run_metrics(metrics, m, n, sweeps_done, total_rotations,
                             total_skipped, result.converged);
  return result;
}

SvdResult parallel_plain_hestenes_svd(const Matrix& a,
                                      const HestenesConfig& cfg,
                                      const ParallelSweepConfig& par,
                                      HestenesStats* stats) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  const fp::NativeOps ops;
  [[maybe_unused]] const int nt = resolve_threads(par);

  Matrix r = a;
  const bool need_v = cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);

  const auto rounds = round_robin_rounds(n);
  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};
  auto* metrics = obs::active(cfg.obs.metrics);
  auto* watchdog = obs::active(cfg.obs.watchdog);
  auto* deadline = obs::active(cfg.obs.deadline);
  // Per-pair norms live inside the parallel region here, so the plain
  // engine feeds the probe at sweep/finalize granularity only.
  auto* numerics = obs::active(cfg.obs.numerics);

  std::size_t sweeps_done = 0;
  std::uint64_t total_rotations = 0, total_skipped = 0;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    std::atomic<std::uint64_t> rotations{0}, skipped{0};
    for (const auto& round : rounds) {
      // All pairs in a round touch disjoint columns: embarrassingly
      // parallel, and bit-identical to sequential execution.
      const auto count = static_cast<std::ptrdiff_t>(round.size());
#pragma omp parallel for schedule(dynamic, 1) num_threads(nt)
      for (std::ptrdiff_t p = 0; p < count; ++p) {
        const auto [i, j] = round[static_cast<std::size_t>(p)];
        const double norm_ii =
            detail::dot_maybe_relaxed(r.col(i), r.col(i), cfg, ops);
        const double norm_jj =
            detail::dot_maybe_relaxed(r.col(j), r.col(j), cfg, ops);
        const double cov =
            detail::dot_maybe_relaxed(r.col(i), r.col(j), cfg, ops);
        if (detail::below_threshold(cov, norm_ii, norm_jj,
                                    cfg.rotation_threshold)) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const RotationParams rp =
            compute_rotation(cfg.formula, norm_jj, norm_ii, cov, ops);
        if (!rp.rotate) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        detail::rotate_columns(r, i, j, rp.cos, rp.sin, ops);
        if (need_v) detail::rotate_columns(v, i, j, rp.cos, rp.sin, ops);
        rotations.fetch_add(1, std::memory_order_relaxed);
      }
      // Implicit barrier at the end of the parallel region = the round
      // synchronization.
    }
    ++sweeps_done;
    total_rotations += rotations.load();
    total_skipped += skipped.load();
    Matrix d;
    const bool need_gram = (stats != nullptr && cfg.track_convergence) ||
                           metrics != nullptr || watchdog != nullptr ||
                           numerics != nullptr || cfg.tolerance > 0.0;
    if (need_gram) d = detail::gram_upper_maybe_relaxed(r, cfg, ops);
    detail::record_sweep_metrics(metrics, watchdog, deadline, numerics, sweep, d,
                                 rotations.load(), skipped.load());
    if (stats != nullptr) {
      stats->total_rotations += rotations.load();
      stats->total_skipped += skipped.load();
      if (cfg.track_convergence)
        stats->sweeps.push_back(
            detail::make_record(d, rotations.load(), skipped.load()));
    }
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged =
        max_relative_offdiag(detail::gram_upper_maybe_relaxed(r, cfg, ops)) <
        1e-10;
  }
  detail::record_run_metrics(metrics, m, n, sweeps_done, total_rotations,
                             total_skipped, result.converged);

  detail::finalize_column_result(r, v, cfg, result, ops);
  if (numerics != nullptr) numerics->observe_finalize(a, result);
  return result;
}

// ---------------------------------------------------------------------------
// Pipelined round engine.
//
// Thread roles (all persistent for the whole decomposition):
//   generator — the Jacobi rotation component.  Walks rounds in sequential
//     order; for each pair it waits for the single round r-1 cross-block
//     task that owns D(i, j) (diagonals are written only by the generator
//     itself, in program order), then reads D, computes the rotation,
//     applies the diagonal updates and zeroes D(i, j), and publishes
//     {cos, sin} through the bounded parameter queue.  It therefore runs at
//     most one round ahead of the update array — exactly the hardware's
//     param-FIFO overlap.
//   nt workers — the update-kernel array.  Each owns a static chunk of the
//     round's cross-block tasks (plus V column rotations), waits for the
//     two parameters a task needs, and applies the same arithmetic in the
//     same per-entry order as the blocked engine.
//   main — the coordinator.  Dispatches rounds, waits the per-round
//     barrier, drains parameters nothing consumed (degenerate rounds), and
//     runs the per-sweep convergence bookkeeping while the pipeline is
//     fenced.
//
// All cross-thread signals are monotonically-versioned atomics stamped with
// the global round id (sweep * num_rounds + round + 1): a waiter checks
// `counter >= id`, so no flag is ever cleared and no ABA race exists.
// Queue occupancy is a plain credit counter; a parameter is charged on push
// and released by whichever consumer (cross task, V task, or the main-loop
// drain) reaches it first, via a first-user CAS on param_consumed.
// ---------------------------------------------------------------------------
SvdResult pipelined_modified_hestenes_svd(const Matrix& a,
                                          const HestenesConfig& cfg,
                                          const PipelinedSweepConfig& pipe,
                                          HestenesStats* stats,
                                          PipelineStats* pipeline) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  const std::size_t depth = std::max<std::size_t>(1, pipe.queue_depth);
  if (pipeline != nullptr) {
    *pipeline = PipelineStats{};
    pipeline->queue_capacity = depth;
  }
  if (n < 2) {
    // No pairs, hence nothing to pipeline: defer to the sequential
    // algorithm the engine is contractually identical to.
    HestenesConfig seq = cfg;
    seq.ordering = Ordering::kRoundRobin;
    return modified_hestenes_svd(a, seq, stats);
  }

  const fp::NativeOps ops;
  const std::size_t nt = resolve_pool_threads(pipe.threads);

  auto* trace = obs::active(cfg.obs.trace);
  auto* metrics = obs::active(cfg.obs.metrics);
  auto* watchdog = obs::active(cfg.obs.watchdog);
  auto* deadline = obs::active(cfg.obs.deadline);
  auto* numerics = obs::active(cfg.obs.numerics);
  const auto engine_t0 = std::chrono::steady_clock::now();
  std::uint32_t coord_tid = 0, gen_tid = 0;
  std::vector<std::uint32_t> worker_tids(nt, 0);
  if (trace != nullptr) {
    coord_tid = trace->register_thread("pipeline coordinator");
    gen_tid = trace->register_thread("pipeline generator");
    for (std::size_t w = 0; w < nt; ++w)
      worker_tids[w] =
          trace->register_thread("pipeline worker " + std::to_string(w));
  }
  // Per-thread time accounting (seconds); written by the owning thread,
  // read only after join().
  double gen_elapsed_s = 0.0, gen_stall_s = 0.0;
  std::vector<double> worker_elapsed_s(nt, 0.0), worker_stall_s(nt, 0.0);

  obs::Span gram_span;
  if (trace != nullptr)
    gram_span =
        obs::Span(trace, coord_tid, "svd", "gram",
                  obs::ArgsBuilder().add("rows", m).add("cols", n).str());
  Matrix d = cfg.simd_relaxed && cfg.gram_chunk_rows == 1
                 ? gram_upper_relaxed(a)
                 : gram_upper_ops(a, ops, cfg.gram_chunk_rows);
  gram_span.end();
  const bool need_v = cfg.compute_u || cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);

  const auto rounds = round_robin_rounds(n);
  const std::size_t num_rounds = rounds.size();
  std::vector<RoundPlan> plans;
  plans.reserve(num_rounds);
  for (const auto& round : rounds) plans.push_back(plan_round(round, n));

  // deps[r][p]: index of the plans[r-1] task owning covariance entry
  // (i, j) of pair p in round r — the only round r-1 update the generator
  // must wait for before touching that pair.  deps[0] is empty: sweep
  // boundaries flush the whole pipeline.
  std::vector<std::vector<std::uint32_t>> deps(num_rounds);
  for (std::size_t r = 1; r < num_rounds; ++r) {
    const RoundPlan& prev = plans[r - 1];
    deps[r].reserve(plans[r].pair_slots);
    for (std::size_t p = 0; p < plans[r].pair_slots; ++p) {
      const std::size_t i = plans[r].slots[p].cols[0];
      const std::size_t j = plans[r].slots[p].cols[1];
      // The two columns sit in distinct prev-round slots (at most one can
      // be prev's idle slot), so (min, max) names a valid cross task.
      const std::size_t sa = std::min(prev.slot_of[i], prev.slot_of[j]);
      const std::size_t sb = std::max(prev.slot_of[i], prev.slot_of[j]);
      deps[r].push_back(static_cast<std::uint32_t>(task_index(prev, sa, sb)));
    }
  }

  std::size_t max_slots = 0, max_tasks = 1;
  for (const RoundPlan& plan : plans) {
    max_slots = std::max(max_slots, plan.slots.size());
    max_tasks = std::max(max_tasks, plan.tasks.size());
  }

  // Parameter buffers ping-pong on round-id parity: round id writes
  // rot[id % 2], which round id + 2 may reuse only after the id barrier —
  // and the barrier for id completes before id + 1 is even dispatched.
  std::vector<SlotRotation> rot[2];
  rot[0].assign(max_slots, SlotRotation{});
  rot[1].assign(max_slots, SlotRotation{});
  std::vector<std::atomic<std::uint64_t>> param_ready(max_slots);
  std::vector<std::atomic<std::uint64_t>> param_consumed(max_slots);
  std::vector<std::atomic<std::uint64_t>> task_done(max_tasks);
  std::vector<std::atomic<std::uint64_t>> worker_done(nt);
  for (auto& x : param_ready) x.store(0, std::memory_order_relaxed);
  for (auto& x : param_consumed) x.store(0, std::memory_order_relaxed);
  for (auto& x : task_done) x.store(0, std::memory_order_relaxed);
  for (auto& x : worker_done) x.store(0, std::memory_order_relaxed);
  std::atomic<std::uint64_t> dispatch{0};
  std::atomic<std::size_t> queue_size{0};
  std::atomic<std::size_t> queue_high_water{0};
  std::atomic<std::uint64_t> params_issued{0};
  std::atomic<std::uint64_t> producer_stalls{0};
  std::atomic<std::uint64_t> consumer_stalls{0};
  std::atomic<std::uint64_t> go_sweep{0};
  std::atomic<std::uint64_t> gen_sweep_done{0};
  std::atomic<bool> quit{false};
  std::atomic<bool> failed{false};
  std::vector<std::uint64_t> sweep_rotations(cfg.max_sweeps, 0);
  std::vector<std::uint64_t> sweep_skipped(cfg.max_sweeps, 0);
  std::mutex error_mu;
  std::exception_ptr first_error;

  const auto round_id = [num_rounds](std::size_t sweep, std::size_t r) {
    return static_cast<std::uint64_t>(sweep) * num_rounds + r + 1;
  };
  const auto record_error = [&] {
    {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    failed.store(true, std::memory_order_release);
  };
  // Releases slot s's queue credit for round `id` exactly once, no matter
  // how many consumers touch the slot.
  const auto consume_param = [&](std::size_t s, std::uint64_t id) {
    std::uint64_t seen = param_consumed[s].load(std::memory_order_relaxed);
    while (seen < id) {
      if (param_consumed[s].compare_exchange_weak(
              seen, id, std::memory_order_relaxed)) {
        queue_size.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
    }
  };
  // Waits until pred() holds, accumulating the wait into *stall_acc (when
  // non-null) and emitting a trace stall span on `stall_tid` (when tracing
  // and the wait was long enough to be visible).  The fast path — pred
  // already true — takes no timestamps at all.
  const auto timed_spin_until = [&](auto&& pred, double* stall_acc,
                                    std::uint32_t stall_tid,
                                    const char* what) {
    if (pred()) return true;
    const auto t0 = std::chrono::steady_clock::now();
    const double ts_us = trace != nullptr ? trace->now_us() : 0.0;
    const bool ok = spin_until(pred, failed);
    const double dt = seconds_since(t0);
    if (stall_acc != nullptr) *stall_acc += dt;
    if (trace != nullptr) {
      // Duration from the recorder's own clock so the stall span cannot
      // outlive an enclosing span closed a moment later on the same clock.
      const double dur_us = trace->now_us() - ts_us;
      if (dur_us >= kMinStallSpanUs)
        trace->emit_complete(stall_tid, "stall", what, ts_us, dur_us);
    }
    return ok;
  };
  const auto await_param = [&](std::size_t s, std::uint64_t id,
                               double* stall_acc, std::uint32_t stall_tid) {
    if (param_ready[s].load(std::memory_order_acquire) >= id) return true;
    consumer_stalls.fetch_add(1, std::memory_order_relaxed);
    return timed_spin_until(
        [&] { return param_ready[s].load(std::memory_order_acquire) >= id; },
        stall_acc, stall_tid, "stall:param-wait");
  };

  // --- The rotation component --------------------------------------------
  std::thread generator([&] {
    const ScopeTimer lifetime(&gen_elapsed_s);
    // Only the generator reads pre-rotation D entries, and it walks pairs
    // in program order — so the probe's sampling sequence is deterministic
    // even though the engine is threaded.
    std::uint64_t pair_seq = 0;
    try {
      for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
        if (!timed_spin_until(
                [&] {
                  return go_sweep.load(std::memory_order_acquire) > sweep ||
                         quit.load(std::memory_order_acquire);
                },
                &gen_stall_s, gen_tid, "stall:sweep-gate")) {
          return;
        }
        if (go_sweep.load(std::memory_order_acquire) <= sweep) return;
        std::uint64_t rotations = 0, skipped = 0;
        for (std::size_t r = 0; r < num_rounds; ++r) {
          const std::uint64_t id = round_id(sweep, r);
          auto& params = rot[id % 2];
          const RoundPlan& plan = plans[r];
          obs::Span generate_span;
          if (trace != nullptr)
            generate_span = obs::Span(trace, gen_tid, "pipeline", "generate",
                                      obs::ArgsBuilder()
                                          .add("sweep", sweep)
                                          .add("round", r)
                                          .str());
          for (std::size_t p = 0; p < plan.pair_slots; ++p) {
            if (r > 0) {
              std::atomic<std::uint64_t>& owner = task_done[deps[r][p]];
              if (!timed_spin_until(
                      [&] {
                        return owner.load(std::memory_order_acquire) >= id - 1;
                      },
                      &gen_stall_s, gen_tid, "stall:dep-wait")) {
                return;
              }
            }
            if (queue_size.load(std::memory_order_relaxed) >= depth) {
              producer_stalls.fetch_add(1, std::memory_order_relaxed);
              if (!timed_spin_until(
                      [&] {
                        return queue_size.load(std::memory_order_relaxed) <
                               depth;
                      },
                      &gen_stall_s, gen_tid, "stall:queue-full")) {
                return;
              }
            }
            const std::size_t i = plan.slots[p].cols[0];
            const std::size_t j = plan.slots[p].cols[1];
            SlotRotation sr;
            const double cov = d(i, j);
            if (numerics != nullptr && numerics->want(pair_seq))
              numerics->observe_pair(d(i, i), d(j, j), cov);
            ++pair_seq;
            if (detail::below_threshold(cov, d(i, i), d(j, j),
                                        cfg.rotation_threshold)) {
              ++skipped;
            } else {
              const RotationParams rp =
                  compute_rotation(cfg.formula, d(j, j), d(i, i), cov, ops);
              if (!rp.rotate) {
                ++skipped;
              } else {
                const double tc = ops.mul(rp.t, cov);
                d(j, j) = ops.add(d(j, j), tc);  // Algorithm 1 line 15
                d(i, i) = ops.sub(d(i, i), tc);  // line 16
                d(i, j) = 0.0;                   // line 17
                sr = SlotRotation{rp.cos, rp.sin, true};
                ++rotations;
              }
            }
            params[p] = sr;
            const std::size_t size =
                queue_size.fetch_add(1, std::memory_order_relaxed) + 1;
            std::size_t hw = queue_high_water.load(std::memory_order_relaxed);
            while (hw < size && !queue_high_water.compare_exchange_weak(
                                    hw, size, std::memory_order_relaxed)) {
            }
            params_issued.fetch_add(1, std::memory_order_relaxed);
            param_ready[p].store(id, std::memory_order_release);
          }
        }
        sweep_rotations[sweep] = rotations;
        sweep_skipped[sweep] = skipped;
        gen_sweep_done.store(sweep + 1, std::memory_order_release);
      }
    } catch (...) {
      record_error();
    }
  });

  // --- The update-kernel array -------------------------------------------
  std::vector<std::thread> workers;
  workers.reserve(nt);
  for (std::size_t w = 0; w < nt; ++w) {
    workers.emplace_back([&, w] {
      const ScopeTimer lifetime(&worker_elapsed_s[w]);
      try {
        for (std::uint64_t next = 1;; ++next) {
          if (!timed_spin_until(
                  [&] {
                    return dispatch.load(std::memory_order_acquire) >= next ||
                           quit.load(std::memory_order_acquire);
                  },
                  &worker_stall_s[w], worker_tids[w], "stall:dispatch")) {
            return;
          }
          if (dispatch.load(std::memory_order_acquire) < next) return;
          const auto r = static_cast<std::size_t>((next - 1) % num_rounds);
          const RoundPlan& plan = plans[r];
          const auto& params = rot[next % 2];
          const std::size_t ntasks = plan.tasks.size();
          const std::size_t total =
              ntasks + (need_v ? plan.pair_slots : 0);
          const std::size_t begin = w * total / nt;
          const std::size_t end = (w + 1) * total / nt;
          obs::Span update_span;
          if (trace != nullptr && begin < end)
            update_span = obs::Span(trace, worker_tids[w], "pipeline",
                                    "update",
                                    obs::ArgsBuilder()
                                        .add("round", r)
                                        .add("tasks", end - begin)
                                        .str());
          for (std::size_t idx = begin; idx < end; ++idx) {
            if (idx < ntasks) {
              const auto [sa, sb] = plan.tasks[idx];
              if (!await_param(sa, next, &worker_stall_s[w], worker_tids[w]))
                return;
              consume_param(sa, next);
              const bool sb_rotates = sb < plan.pair_slots;
              if (sb_rotates) {
                if (!await_param(sb, next, &worker_stall_s[w],
                                 worker_tids[w]))
                  return;
                consume_param(sb, next);
              }
              const Slot& slot_a = plan.slots[sa];
              const Slot& slot_b = plan.slots[sb];
              if (params[sa].active) {
                for (std::size_t c = 0; c < slot_b.count; ++c)
                  update_cov_entry(d, slot_b.cols[c], slot_a.cols[0],
                                   slot_a.cols[1], params[sa].c, params[sa].s,
                                   ops);
              }
              if (sb_rotates && params[sb].active) {
                for (std::size_t c = 0; c < slot_a.count; ++c)
                  update_cov_entry(d, slot_a.cols[c], slot_b.cols[0],
                                   slot_b.cols[1], params[sb].c, params[sb].s,
                                   ops);
              }
              task_done[idx].store(next, std::memory_order_release);
            } else {
              const std::size_t p = idx - ntasks;
              if (!await_param(p, next, &worker_stall_s[w], worker_tids[w]))
                return;
              consume_param(p, next);
              if (params[p].active) {
                detail::rotate_columns(v, plan.slots[p].cols[0],
                                       plan.slots[p].cols[1], params[p].c,
                                       params[p].s, ops);
              }
            }
          }
          worker_done[w].store(next, std::memory_order_release);
        }
      } catch (...) {
        record_error();
      }
    });
  }

  // --- The coordinator -----------------------------------------------------
  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};
  std::size_t sweeps_done = 0;
  bool aborted = false;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps && !aborted; ++sweep) {
    obs::Span sweep_span;
    if (trace != nullptr)
      sweep_span = obs::Span(trace, coord_tid, "svd", "sweep",
                             obs::ArgsBuilder().add("sweep", sweep).str());
    go_sweep.store(sweep + 1, std::memory_order_release);
    for (std::size_t r = 0; r < num_rounds && !aborted; ++r) {
      const std::uint64_t id = round_id(sweep, r);
      dispatch.store(id, std::memory_order_release);
      if (metrics != nullptr || trace != nullptr) {
        // Occupancy sampled once per round, mid-drain: a timing-dependent
        // timeline (indexed by the monotonic round id) comparable against
        // the simulator's sim.param_fifo occupancy after the
        // rotation_group_size calibration (docs/OBSERVABILITY.md).
        const auto occupancy = static_cast<double>(
            queue_size.load(std::memory_order_relaxed));
        if (metrics != nullptr)
          metrics->series_append("pipeline.queue.occupancy", "rotations",
                                 static_cast<double>(id), occupancy);
        if (trace != nullptr)
          trace->emit_counter(coord_tid, "pipeline",
                              "pipeline.queue.occupancy", trace->now_us(),
                              occupancy);
      }
      for (std::size_t w = 0; w < nt; ++w) {
        if (!spin_until(
                [&] {
                  return worker_done[w].load(std::memory_order_acquire) >= id;
                },
                failed)) {
          aborted = true;
          break;
        }
      }
      if (aborted) break;
      // Drain parameters no task or V rotation consumed (degenerate rounds
      // only, e.g. n == 2 with no vectors requested), so the queue cannot
      // silt up across rounds.
      for (std::size_t p = 0; p < plans[r].pair_slots; ++p) {
        if (param_consumed[p].load(std::memory_order_relaxed) >= id) continue;
        if (!await_param(p, id, nullptr, coord_tid)) {
          aborted = true;
          break;
        }
        consume_param(p, id);
      }
    }
    if (aborted) break;
    // Fence: the generator finished the sweep (it cannot have entered the
    // next one — go_sweep still gates it), so d is stable for bookkeeping.
    if (!spin_until(
            [&] {
              return gen_sweep_done.load(std::memory_order_acquire) >=
                     sweep + 1;
            },
            failed)) {
      break;
    }
    ++sweeps_done;
    detail::record_sweep_metrics(metrics, watchdog, deadline, numerics, sweep, d,
                                 sweep_rotations[sweep],
                                 sweep_skipped[sweep]);
    if (stats != nullptr) {
      stats->total_rotations += sweep_rotations[sweep];
      stats->total_skipped += sweep_skipped[sweep];
      if (cfg.track_convergence)
        stats->sweeps.push_back(detail::make_record(
            d, sweep_rotations[sweep], sweep_skipped[sweep]));
    }
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  quit.store(true, std::memory_order_release);
  generator.join();
  for (auto& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);

  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged = max_relative_offdiag(d) < 1e-10;
  }
  // Per-thread busy = lifetime - accumulated stalls (never negative: clock
  // granularity can make the two measurements disagree by nanoseconds).
  PipelineStats measured;
  measured.queue_capacity = depth;
  measured.queue_high_water = queue_high_water.load();
  measured.params_issued = params_issued.load();
  measured.producer_stalls = producer_stalls.load();
  measured.consumer_stalls = consumer_stalls.load();
  measured.wall_s = seconds_since(engine_t0);
  measured.generator_stall_s = gen_stall_s;
  measured.generator_busy_s = std::max(0.0, gen_elapsed_s - gen_stall_s);
  measured.worker_busy_s.resize(nt);
  measured.worker_stall_s.resize(nt);
  for (std::size_t w = 0; w < nt; ++w) {
    measured.worker_stall_s[w] = worker_stall_s[w];
    measured.worker_busy_s[w] =
        std::max(0.0, worker_elapsed_s[w] - worker_stall_s[w]);
  }
  if (pipeline != nullptr) *pipeline = measured;
  if (metrics != nullptr) {
    metrics->gauge_set("pipeline.queue.capacity", "rotations",
                       static_cast<double>(measured.queue_capacity));
    metrics->gauge_set("pipeline.queue.high_water", "rotations",
                       static_cast<double>(measured.queue_high_water));
    metrics->counter_add("pipeline.params_issued", "rotations",
                         measured.params_issued);
    metrics->counter_add("pipeline.producer_stalls", "stalls",
                         measured.producer_stalls);
    metrics->counter_add("pipeline.consumer_stalls", "stalls",
                         measured.consumer_stalls);
    metrics->gauge_set("pipeline.wall_s", "s", measured.wall_s);
    metrics->gauge_set("pipeline.generator.busy_s", "s",
                       measured.generator_busy_s);
    metrics->gauge_set("pipeline.generator.stall_s", "s",
                       measured.generator_stall_s);
    for (std::size_t w = 0; w < nt; ++w) {
      const std::string prefix =
          "pipeline.worker." + std::to_string(w) + ".";
      metrics->gauge_set(prefix + "busy_s", "s", measured.worker_busy_s[w]);
      metrics->gauge_set(prefix + "stall_s", "s", measured.worker_stall_s[w]);
    }
  }

  obs::Span finalize_span;
  if (trace != nullptr)
    finalize_span = obs::Span(trace, coord_tid, "svd", "finalize");
  detail::finalize_gram_result(a, d, v, cfg, result, ops, cfg.workspace);
  finalize_span.end();
  if (numerics != nullptr) numerics->observe_finalize(a, result);
  detail::record_run_metrics(metrics, m, n, result.sweeps,
                             total_rotations_of(sweep_rotations, sweeps_done),
                             total_rotations_of(sweep_skipped, sweeps_done),
                             result.converged);
  return result;
}

}  // namespace hjsvd

#include "svd/parallel_sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "linalg/kernels.hpp"
#include "svd/hestenes_impl.hpp"
#include "svd/plain_hestenes_impl.hpp"

namespace hjsvd {
namespace {

int resolve_threads(const ParallelSweepConfig& par) {
#ifdef _OPENMP
  return par.threads == 0 ? omp_get_max_threads()
                          : static_cast<int>(par.threads);
#else
  (void)par;
  return 1;
#endif
}

/// Canonical upper-triangle location of the covariance between x and y.
inline double& cov_at(Matrix& d, std::size_t x, std::size_t y) {
  return x < y ? d(x, y) : d(y, x);
}

/// One rotation's update of the covariance pair with free index k — the
/// same arithmetic detail::rotate_covariances performs for that k, via the
/// canonical storage locations (docs/ALGORITHM.md §4).
inline void update_cov_entry(Matrix& d, std::size_t k, std::size_t i,
                             std::size_t j, double c, double s,
                             fp::NativeOps ops) {
  double& di = cov_at(d, k, i);
  double& dj = cov_at(d, k, j);
  const double x = di;
  const double y = dj;
  di = ops.sub(ops.mul(x, c), ops.mul(y, s));
  dj = ops.add(ops.mul(x, s), ops.mul(y, c));
}

/// A round slot: one disjoint pair of the round, or one idle column (the
/// round-robin bye for odd n).  Pair slots come first, in round order — the
/// order the sequential algorithm applies the rotations in.
struct Slot {
  std::size_t cols[2];
  std::size_t count = 0;
};

/// Rotation parameters generated for a pair slot (identity when skipped).
struct SlotRotation {
  double c = 1.0;
  double s = 0.0;
  bool active = false;
};

/// Static decomposition of one round: slots plus the cross-task list.  A
/// task (a, b) owns every covariance entry with one index in slot a and one
/// in slot b, and applies slot a's rotation before slot b's — the order the
/// sequential sweep would touch those entries in.  Each entry of D belongs
/// to exactly one task (or to the serial diagonal step), so the schedule is
/// race-free and bitwise deterministic.
struct RoundPlan {
  std::vector<Slot> slots;
  std::size_t pair_slots = 0;  // slots [0, pair_slots) rotate
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tasks;
};

RoundPlan plan_round(const std::vector<Pair>& round, std::size_t n) {
  RoundPlan plan;
  std::vector<bool> covered(n, false);
  for (const auto& [i, j] : round) {
    Slot s;
    s.cols[0] = i;
    s.cols[1] = j;
    s.count = 2;
    plan.slots.push_back(s);
    covered[i] = covered[j] = true;
  }
  plan.pair_slots = plan.slots.size();
  for (std::size_t c = 0; c < n; ++c) {
    if (covered[c]) continue;
    Slot s;
    s.cols[0] = c;
    s.count = 1;
    plan.slots.push_back(s);
  }
  // Cross tasks: every slot pair with at least one rotating member.  Idle
  // slots pair only with rotating slots (an idle-idle block has no work).
  const std::size_t total = plan.slots.size();
  for (std::size_t a = 0; a < plan.pair_slots; ++a)
    for (std::size_t b = a + 1; b < total; ++b)
      plan.tasks.emplace_back(static_cast<std::uint32_t>(a),
                              static_cast<std::uint32_t>(b));
  return plan;
}

}  // namespace

SvdResult parallel_modified_hestenes_svd(const Matrix& a,
                                         const HestenesConfig& cfg,
                                         const ParallelSweepConfig& par,
                                         HestenesStats* stats) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  const fp::NativeOps ops;
  [[maybe_unused]] const int nt = resolve_threads(par);

  Matrix d = gram_upper_ops(a, ops, cfg.gram_chunk_rows);
  const bool need_v = cfg.compute_u || cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);

  const auto rounds = round_robin_rounds(n);
  std::vector<RoundPlan> plans;
  plans.reserve(rounds.size());
  for (const auto& round : rounds) plans.push_back(plan_round(round, n));

  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};
  std::vector<SlotRotation> rot;

  std::size_t sweeps_done = 0;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    std::uint64_t rotations = 0, skipped = 0;
    for (const auto& plan : plans) {
      // --- Rotation component (serial): parameters and diagonal updates.
      // Within a round no pair touches another pair's D(i,i), D(j,j) or
      // D(i,j), so generating every parameter up front reads exactly the
      // values the sequential sweep would.
      rot.assign(plan.slots.size(), SlotRotation{});
      for (std::size_t p = 0; p < plan.pair_slots; ++p) {
        const std::size_t i = plan.slots[p].cols[0];
        const std::size_t j = plan.slots[p].cols[1];
        const double cov = d(i, j);
        if (detail::below_threshold(cov, d(i, i), d(j, j),
                                    cfg.rotation_threshold)) {
          ++skipped;
          continue;
        }
        const RotationParams rp =
            compute_rotation(cfg.formula, d(j, j), d(i, i), cov, ops);
        if (!rp.rotate) {
          ++skipped;
          continue;
        }
        const double tc = ops.mul(rp.t, cov);
        d(j, j) = ops.add(d(j, j), tc);  // Algorithm 1 line 15
        d(i, i) = ops.sub(d(i, i), tc);  // line 16
        d(i, j) = 0.0;                   // line 17
        rot[p] = SlotRotation{rp.cos, rp.sin, true};
        ++rotations;
      }

      // --- Update array (parallel): cross-block covariance updates.
      const auto ntasks = static_cast<std::ptrdiff_t>(plan.tasks.size());
#pragma omp parallel for schedule(static) num_threads(nt)
      for (std::ptrdiff_t t = 0; t < ntasks; ++t) {
        const auto [sa, sb] = plan.tasks[static_cast<std::size_t>(t)];
        const Slot& slot_a = plan.slots[sa];
        const Slot& slot_b = plan.slots[sb];
        if (rot[sa].active) {
          for (std::size_t c = 0; c < slot_b.count; ++c)
            update_cov_entry(d, slot_b.cols[c], slot_a.cols[0],
                             slot_a.cols[1], rot[sa].c, rot[sa].s, ops);
        }
        if (sb < plan.pair_slots && rot[sb].active) {
          for (std::size_t c = 0; c < slot_a.count; ++c)
            update_cov_entry(d, slot_a.cols[c], slot_b.cols[0],
                             slot_b.cols[1], rot[sb].c, rot[sb].s, ops);
        }
      }

      // --- V accumulation (parallel): pairs own disjoint columns of V.
      if (need_v) {
        const auto npairs = static_cast<std::ptrdiff_t>(plan.pair_slots);
#pragma omp parallel for schedule(static) num_threads(nt)
        for (std::ptrdiff_t p = 0; p < npairs; ++p) {
          if (!rot[static_cast<std::size_t>(p)].active) continue;
          const Slot& s = plan.slots[static_cast<std::size_t>(p)];
          detail::rotate_columns(v, s.cols[0], s.cols[1],
                                 rot[static_cast<std::size_t>(p)].c,
                                 rot[static_cast<std::size_t>(p)].s, ops);
        }
      }
    }
    ++sweeps_done;
    if (stats != nullptr) {
      stats->total_rotations += rotations;
      stats->total_skipped += skipped;
      if (cfg.track_convergence)
        stats->sweeps.push_back(detail::make_record(d, rotations, skipped));
    }
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged = max_relative_offdiag(d) < 1e-10;
  }

  detail::finalize_gram_result(a, d, v, cfg, result, ops);
  return result;
}

SvdResult parallel_plain_hestenes_svd(const Matrix& a,
                                      const HestenesConfig& cfg,
                                      const ParallelSweepConfig& par,
                                      HestenesStats* stats) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  const fp::NativeOps ops;
  [[maybe_unused]] const int nt = resolve_threads(par);

  Matrix r = a;
  const bool need_v = cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);

  const auto rounds = round_robin_rounds(n);
  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};

  std::size_t sweeps_done = 0;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    std::atomic<std::uint64_t> rotations{0}, skipped{0};
    for (const auto& round : rounds) {
      // All pairs in a round touch disjoint columns: embarrassingly
      // parallel, and bit-identical to sequential execution.
      const auto count = static_cast<std::ptrdiff_t>(round.size());
#pragma omp parallel for schedule(dynamic, 1) num_threads(nt)
      for (std::ptrdiff_t p = 0; p < count; ++p) {
        const auto [i, j] = round[static_cast<std::size_t>(p)];
        const double norm_ii = detail::dot_ops(r.col(i), r.col(i), ops);
        const double norm_jj = detail::dot_ops(r.col(j), r.col(j), ops);
        const double cov = detail::dot_ops(r.col(i), r.col(j), ops);
        if (detail::below_threshold(cov, norm_ii, norm_jj,
                                    cfg.rotation_threshold)) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const RotationParams rp =
            compute_rotation(cfg.formula, norm_jj, norm_ii, cov, ops);
        if (!rp.rotate) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        detail::rotate_columns(r, i, j, rp.cos, rp.sin, ops);
        if (need_v) detail::rotate_columns(v, i, j, rp.cos, rp.sin, ops);
        rotations.fetch_add(1, std::memory_order_relaxed);
      }
      // Implicit barrier at the end of the parallel region = the round
      // synchronization.
    }
    ++sweeps_done;
    Matrix d;
    const bool need_metrics =
        (stats != nullptr && cfg.track_convergence) || cfg.tolerance > 0.0;
    if (need_metrics) d = gram_upper_ops(r, ops);
    if (stats != nullptr) {
      stats->total_rotations += rotations.load();
      stats->total_skipped += skipped.load();
      if (cfg.track_convergence)
        stats->sweeps.push_back(
            detail::make_record(d, rotations.load(), skipped.load()));
    }
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged = max_relative_offdiag(gram_upper_ops(r, ops)) < 1e-10;
  }

  detail::finalize_column_result(r, v, cfg, result, ops);
  return result;
}

}  // namespace hjsvd

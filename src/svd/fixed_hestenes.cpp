#include "svd/fixed_hestenes.hpp"

#include "svd/plain_hestenes_impl.hpp"

namespace hjsvd {

// The shared kernel templates are instantiated here for the fixed-point
// policy (kept out of hestenes.cpp so float-only users don't pay for it).
template SvdResult plain_hestenes_svd_t<fp::FixedOps>(const Matrix&,
                                                      const HestenesConfig&,
                                                      HestenesStats*,
                                                      fp::FixedOps);

SvdResult fixed_point_hestenes_svd(const Matrix& a, const fp::FixedFormat& fmt,
                                   fp::FixedStats& stats,
                                   const HestenesConfig& cfg) {
  // Quantize the input first — loading the matrix into a fixed-point
  // datapath is itself a quantization.
  Matrix q = a;
  for (double& x : q.data()) x = fp::fixed_quantize(x, fmt, &stats);
  return plain_hestenes_svd_t(q, cfg, nullptr, fp::FixedOps{fmt, stats});
}

}  // namespace hjsvd

// The paper's primary contribution: the modified Hestenes-Jacobi SVD
// (Algorithm 1), which caches the covariance matrix D = A^T A and applies
// every Jacobi rotation directly to D instead of re-computing norms and
// covariances from the columns each sweep.  Column data is only read once
// (to build D) and, when singular vectors are requested, once more at the
// end (U = A * V * Sigma^-1, eq. (7)).
#pragma once

#include <cstdint>
#include <vector>

#include "fp/latency.hpp"
#include "fp/ops.hpp"
#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "obs/sinks.hpp"
#include "svd/ordering.hpp"
#include "svd/rotation.hpp"

namespace hjsvd {

class Workspace;

/// Configuration of a Hestenes-Jacobi run.
struct HestenesConfig {
  /// Maximum number of sweeps.  The paper executes a fixed 6 sweeps, "which
  /// is believed sufficient for achieving convergence with certain
  /// thresholds" (Section VI.A).
  std::size_t max_sweeps = 6;

  /// Early-termination threshold on max |off-diagonal| / max diagonal of D,
  /// checked after each sweep.  0 disables early termination (fixed sweep
  /// count, as in the paper's hardware).
  double tolerance = 0.0;

  /// Pair ordering per sweep (Fig. 6 uses the round-robin tournament).
  Ordering ordering = Ordering::kRoundRobin;

  /// Rotation-parameter formula (the FPGA evaluates the closed forms of
  /// eqs. (8)-(10)).
  RotationFormula formula = RotationFormula::kHardware;

  bool compute_u = false;
  bool compute_v = false;

  /// Record per-sweep convergence metrics into HestenesStats.
  bool track_convergence = false;

  /// Threshold-Jacobi: skip a pair when |cov| <= threshold *
  /// sqrt(D_ii * D_jj) (relative off-diagonal magnitude).  0 rotates every
  /// non-zero covariance, as the paper's hardware does; a small threshold
  /// (e.g. 1e-12) saves late-sweep rotations with negligible accuracy cost
  /// (bench_ablation_threshold quantifies the trade).
  double rotation_threshold = 0.0;

  /// Observability sinks (trace spans + metrics).  Both pointers default to
  /// null = record nothing; recording never changes the arithmetic, so
  /// results are byte-identical with and without sinks attached (asserted
  /// by tests/obs/test_obs.cpp).  See docs/OBSERVABILITY.md.
  obs::ObsContext obs{};

  /// Opt-in relaxed SIMD tier (native arithmetic only): Gram/covariance dot
  /// products use the 4-lane-split accumulation of linalg/simd/ instead of
  /// strict left-to-right sums.  Results are no longer bitwise identical to
  /// the scalar reference, but stay deterministic — identical across SIMD
  /// dispatch levels and thread counts — and satisfy the accuracy bounds
  /// tested in tests/linalg/test_simd_kernels.cpp.  Ignored by the
  /// soft-float and counting policies and by gram_chunk_rows != 1 (the
  /// chunked association is itself the requested accumulation order).
  bool simd_relaxed = false;

  /// Optional scratch arena (svd/workspace.hpp) the engine draws its
  /// internal buffers from — Gram matrix, rotation accumulator, and the
  /// finalization temporaries that do not escape into the result.  Null
  /// (the default) allocates fresh buffers per run.  Results are bitwise
  /// identical either way (acquired buffers come back zeroed); the arena
  /// must not be shared across concurrently running engines.  Honored by
  /// the sequential modified engine and the finalization of the
  /// Gram-rotating parallel engines; other engines ignore it.
  Workspace* workspace = nullptr;

  /// Accumulation chunking of the initial Gram computation: chunk_rows = 1
  /// is strict left-to-right; chunk_rows = L models the hardware's layered
  /// multiplier-array (partial sums over L rows chained through the layers,
  /// then accumulated chunk by chunk).  The architecture model passes its
  /// layer count here so library and simulator agree bit-for-bit.
  std::size_t gram_chunk_rows = 1;
};

/// Per-sweep convergence record (the metric of Figs. 10-11).
struct SweepRecord {
  double mean_abs_offdiag = 0.0;  // mean |covariance| after the sweep
  double max_rel_offdiag = 0.0;   // max |off-diag| / max diag
  std::uint64_t rotations = 0;
  std::uint64_t skipped = 0;  // pairs with exactly zero covariance
};

/// Statistics of a completed run.
struct HestenesStats {
  std::vector<SweepRecord> sweeps;
  std::uint64_t total_rotations = 0;
  std::uint64_t total_skipped = 0;
};

/// Modified Hestenes-Jacobi SVD (Algorithm 1), generic over the arithmetic
/// policy.  Defined in hestenes_impl.hpp and explicitly instantiated for
/// fp::NativeOps, fp::SoftOps and fp::CountingOps.
template <class Ops>
SvdResult modified_hestenes_svd_t(const Matrix& a, const HestenesConfig& cfg,
                                  HestenesStats* stats, Ops ops);

/// Host-FPU convenience entry point.
SvdResult modified_hestenes_svd(const Matrix& a,
                                const HestenesConfig& cfg = {},
                                HestenesStats* stats = nullptr);

/// Bit-accurate soft-float entry point (models the Coregen cores).
SvdResult modified_hestenes_svd_soft(const Matrix& a,
                                     const HestenesConfig& cfg = {},
                                     HestenesStats* stats = nullptr);

/// Operation-counting entry point (ablation studies).
SvdResult modified_hestenes_svd_counting(const Matrix& a,
                                         const HestenesConfig& cfg,
                                         fp::OpCounts& counts,
                                         HestenesStats* stats = nullptr);

/// Upper-triangular Gram matrix computed with the given arithmetic policy.
/// chunk_rows = 1 gives strict left-to-right accumulation; chunk_rows = L
/// reproduces the layered multiplier-array's association (see
/// HestenesConfig::gram_chunk_rows).
template <class Ops>
Matrix gram_upper_ops(const Matrix& a, Ops ops, std::size_t chunk_rows = 1);

/// gram_upper_ops into a caller-provided n x n matrix whose strict lower
/// triangle must already be zero (a fresh or Workspace-acquired buffer);
/// only entries with row <= col are written.  Allocation-free and bitwise
/// equal to gram_upper_ops(a, ops, chunk_rows).
template <class Ops>
void gram_upper_ops_into(Matrix& d, const Matrix& a, Ops ops,
                         std::size_t chunk_rows = 1);

}  // namespace hjsvd

// Library front door: one entry point dispatching over every SVD algorithm
// in the repository, for users who want "an SVD" without picking a module.
//
//   #include "api/svd.hpp"
//   auto result = hjsvd::svd(a);                       // sensible default
//   auto exact  = hjsvd::svd(a, {.method = SvdMethod::kGolubKahan,
//                                .compute_u = true, .compute_v = true});
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"

namespace hjsvd {

enum class SvdMethod {
  kModifiedHestenes,  // the paper's Algorithm 1 (default)
  kPlainHestenes,     // recomputing one-sided Jacobi
  kParallelHestenes,  // OpenMP bulk-synchronous one-sided Jacobi
  kTwoSidedJacobi,    // Kogbetliantz (square matrices only)
  kGolubKahan,        // Householder bidiagonalization + QR iteration
};

struct SvdOptions {
  SvdMethod method = SvdMethod::kModifiedHestenes;
  bool compute_u = false;
  bool compute_v = false;
  /// Target relative accuracy of the iterative (Jacobi) methods.
  double tolerance = 1e-13;
  /// Iteration cap for the Jacobi methods (sweeps).
  std::size_t max_sweeps = 30;
};

/// Decomposes an arbitrary m x n matrix.  Throws hjsvd::Error for invalid
/// inputs (empty matrices; rectangular input to the two-sided method).
SvdResult svd(const Matrix& a, const SvdOptions& options = {});

/// Human-readable method name (for reports).
const char* svd_method_name(SvdMethod method);

}  // namespace hjsvd

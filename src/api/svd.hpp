// Library front door: one entry point dispatching over every SVD algorithm
// in the repository, for users who want "an SVD" without picking a module.
//
//   #include "api/svd.hpp"
//   auto result = hjsvd::svd(a);                       // sensible default
//   auto exact  = hjsvd::svd(a, {.method = SvdMethod::kGolubKahan,
//                                .compute_u = true, .compute_v = true});
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "obs/sinks.hpp"

namespace hjsvd {

class Workspace;

enum class SvdMethod {
  kModifiedHestenes,          // the paper's Algorithm 1 (default)
  kPlainHestenes,             // recomputing one-sided Jacobi
  kParallelHestenes,          // pair-parallel plain one-sided Jacobi
  kParallelModifiedHestenes,  // block-partitioned Gram-rotating engine
  kPipelinedModifiedHestenes, // param-FIFO pipelined Gram-rotating engine
  kMixedModifiedHestenes,     // float opening sweeps + double refinement
  kTwoSidedJacobi,            // Kogbetliantz (square matrices only)
  kGolubKahan,                // Householder bidiagonalization + QR iteration
};

struct SvdOptions {
  SvdMethod method = SvdMethod::kModifiedHestenes;
  bool compute_u = false;
  bool compute_v = false;
  /// Target relative accuracy of the iterative (Jacobi) methods.
  double tolerance = 1e-13;
  /// Iteration cap for the Jacobi methods (sweeps).
  std::size_t max_sweeps = 30;
  /// Worker threads of the parallel methods; 0 defers to the OpenMP
  /// runtime.  Results are bitwise independent of this value.
  std::size_t threads = 0;
  /// Rotation-parameter queue capacity of kPipelinedModifiedHestenes (the
  /// software analogue of the accelerator's param FIFO depth); other
  /// methods ignore it.  Results are bitwise independent of this value.
  std::size_t pipeline_queue_depth = 8;
  /// kMixedModifiedHestenes only: promote the float phase to double once
  /// max |off-diag| / max diag of the float-phase Gram matrix falls below
  /// this (must be positive and finite; values near sqrt(eps_single) ~ 3e-4
  /// hand over exactly as binary32 runs out of precision).  The engine also
  /// promotes early on float-phase stall, so a too-small value degrades to
  /// at most one wasted float sweep, never to a wrong answer.  Other
  /// methods ignore it.  See docs/ALGORITHM.md §10.
  double mp_switch_threshold = 1e-4;
  /// Opt-in relaxed SIMD tier for the Hestenes-family methods: Gram and
  /// covariance dot products use the 4-lane-split accumulation of
  /// linalg/simd/ instead of strict left-to-right sums (roughly lane-count
  /// faster on the reduction-bound paths).  Results are then no longer
  /// bitwise identical to the scalar reference, but remain deterministic —
  /// identical across SIMD dispatch levels, thread counts, and the
  /// Gram-path engines — and satisfy the accuracy bounds tested in
  /// tests/linalg/test_simd_kernels.cpp.  The default OFF keeps every
  /// method bitwise identical with SIMD enabled or disabled.  Baseline
  /// methods (two-sided, Golub-Kahan) ignore it.
  bool simd_relaxed = false;
  /// svd_batch() only: a batch item whose estimated cost is at least this
  /// fraction of the whole batch's total cost is decomposed by the
  /// *parallel* counterpart of `method` on borrowed pool workers (nested
  /// parallelism) instead of the sequential path, so one oversized matrix
  /// cannot serialize the tail of a mixed batch.  0 disables splitting.
  /// Only the Hestenes-family methods split — their parallel engines are
  /// bitwise identical to the sequential path at every thread count — so
  /// results are bitwise independent of this value; the two-sided and
  /// Golub-Kahan baselines always run sequentially.
  double batch_split_min_fraction = 0.25;
  /// Observability sinks (see docs/OBSERVABILITY.md).  `trace` collects
  /// Chrome trace-event spans, `metrics` collects counters / gauges /
  /// series; null (the default) records nothing.  Recording never changes
  /// the arithmetic: results are byte-identical with and without sinks
  /// (tests/obs/test_obs.cpp).  The Hestenes-family methods emit
  /// sweep/round-level detail; baseline methods record run-level shape
  /// metrics only.  svd_batch() ignores per-item sinks (concurrent workers
  /// would interleave nondeterministically) and records batch-level spans
  /// and metrics instead.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Live-telemetry watchdog (src/obs/live.hpp): the Hestenes-family
  /// methods feed it per-sweep off-diagonal norms for stall detection, and
  /// every method polls its wall-clock deadline.  svd_batch() strips it
  /// from per-item options (interleaved per-item sweep series would make
  /// stall detection meaningless) and polls only the deadline between
  /// items.  Like the sinks, it never changes the arithmetic.
  obs::Watchdog* watchdog = nullptr;
  /// Deadline-only poller: a watchdog whose check_deadline() is polled once
  /// per sweep *without* feeding it convergence progress.  svd_batch()
  /// attaches its batch-scoped watchdog here on every item so one long
  /// in-flight decomposition honors the wall-clock budget at sweep
  /// granularity, while stall/divergence detection stays per-batch only.
  /// Ignored when it aliases `watchdog` (already polled via on_sweep).
  obs::Watchdog* deadline_poller = nullptr;
  /// Numerical-health probe (src/obs/numerics.hpp): the Hestenes-family
  /// methods feed it sampled pre-rotation pair values, per-sweep
  /// off-diagonal mass, and the finalized result (orthogonality drift /
  /// backward error, skipped when U/V are absent).  Baseline methods
  /// ignore it.  Unlike the other sinks, svd_batch() keeps it attached to
  /// every item: the probe's aggregates are order-independent and
  /// internally locked, so concurrent workers feed one probe safely.
  /// Read-only observer — results stay bitwise identical probes on or off.
  obs::NumericsProbe* numerics = nullptr;
  /// Scratch arena (svd/workspace.hpp) the Hestenes-family engines draw
  /// their internal buffers from, so repeated same-shape calls skip the
  /// heap entirely after warmup; null (the default) allocates per call.
  /// Results are bitwise identical either way — acquired buffers come back
  /// zeroed.  Must not be shared across concurrently running svd() calls;
  /// EngineInstance (api/engine.hpp) manages one arena per pool worker and
  /// is the intended owner.
  Workspace* workspace = nullptr;
};

/// Decomposes an arbitrary m x n matrix.  Throws hjsvd::Error for invalid
/// inputs (empty matrices; rectangular input to the two-sided method).
SvdResult svd(const Matrix& a, const SvdOptions& options = {});

/// Scheduler behaviour of one svd_batch() call (optional out-param).
struct SvdBatchStats {
  std::size_t items = 0;    ///< Matrices in the batch.
  std::size_t workers = 0;  ///< Pool worker threads actually spawned
                            ///< (min(requested_workers, items)); matches the
                            ///< batch.workers gauge and the number of
                            ///< "svd_batch worker N" trace timelines.
  std::size_t requested_workers = 0;  ///< Thread budget before clamping;
                                      ///< nested splits may borrow up to
                                      ///< this many threads for one item.
  std::uint64_t steals = 0;           ///< Items run off a stolen deque entry.
  std::uint64_t nested_splits = 0;    ///< Items decomposed by a parallel
                                      ///< engine on borrowed workers.
  std::uint64_t helpers_granted = 0;  ///< Total borrowed helper threads.
  std::size_t items_ok = 0;      ///< Items that decomposed successfully.
  std::size_t items_failed = 0;  ///< Items whose engine threw (every item
                                 ///< still runs; see error contract below).
  double wall_s = 0.0;           ///< Pool spawn-to-join wall clock.
  std::vector<double> worker_busy_s;  ///< Per pool worker: time inside items.
  std::vector<double> worker_idle_s;  ///< Per pool worker: wall_s - busy.
};

/// Decomposes every matrix of a batch, spreading the work across a
/// work-stealing thread pool — the serving-shaped workload of many small
/// independent problems.  Matrices are seeded onto per-worker deques by
/// deterministic cost-based LPT sharding (arch::shard_by_cost, the
/// multi-engine dispatch rule); an idle worker steals from the victim with
/// the greatest remaining estimated cost, so mixed-size batches keep every
/// worker fed even when the cost model misjudges convergence.  Items whose
/// estimated cost reaches options.batch_split_min_fraction of the batch
/// total are decomposed by the parallel counterpart of options.method on
/// borrowed pool workers (nested parallelism).  Neither stealing nor
/// splitting changes the arithmetic: results[i] is bitwise identical to
/// svd(batch[i], options) at every thread count.  `threads` = 0 defers to
/// the OpenMP runtime.
///
/// Error contract: the whole batch is validated before any work starts
/// (shape and method constraints, e.g. square-only for kTwoSidedJacobi),
/// so a malformed batch throws without computing anything.  Data-dependent
/// failures (e.g. non-finite entries) surface from the engine mid-run; the
/// remaining items still run to completion, and the rethrown hjsvd::Error
/// is deterministically the *lowest-index* failure, prefixed with
/// "svd_batch: item <i>".  `stats` (optional) receives scheduler counters
/// even when an error is rethrown.
std::vector<SvdResult> svd_batch(const std::vector<Matrix>& batch,
                                 const SvdOptions& options = {},
                                 std::size_t threads = 0,
                                 SvdBatchStats* stats = nullptr);

/// Human-readable method name (for reports).
const char* svd_method_name(SvdMethod method);

/// Canonical short token of a method — the shared vocabulary of the CLI's
/// --method flag and the serve protocol's "method" field: hestenes | plain
/// | parallel | parallel-modified | pipelined-modified | mixed-modified |
/// two-sided | golub-kahan.
const char* svd_method_token(SvdMethod method);

/// Inverse of svd_method_token, also accepting the historical aliases
/// (modified, block, pipelined, mixed, twosided, gk).  Returns false on an
/// unknown token so each caller can raise its own error flavor (usage
/// error in the CLI, bad_request in the serve protocol).
bool svd_method_from_token(const std::string& token, SvdMethod* method);

}  // namespace hjsvd

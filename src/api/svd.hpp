// Library front door: one entry point dispatching over every SVD algorithm
// in the repository, for users who want "an SVD" without picking a module.
//
//   #include "api/svd.hpp"
//   auto result = hjsvd::svd(a);                       // sensible default
//   auto exact  = hjsvd::svd(a, {.method = SvdMethod::kGolubKahan,
//                                .compute_u = true, .compute_v = true});
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "obs/sinks.hpp"

namespace hjsvd {

enum class SvdMethod {
  kModifiedHestenes,          // the paper's Algorithm 1 (default)
  kPlainHestenes,             // recomputing one-sided Jacobi
  kParallelHestenes,          // pair-parallel plain one-sided Jacobi
  kParallelModifiedHestenes,  // block-partitioned Gram-rotating engine
  kPipelinedModifiedHestenes, // param-FIFO pipelined Gram-rotating engine
  kTwoSidedJacobi,            // Kogbetliantz (square matrices only)
  kGolubKahan,                // Householder bidiagonalization + QR iteration
};

struct SvdOptions {
  SvdMethod method = SvdMethod::kModifiedHestenes;
  bool compute_u = false;
  bool compute_v = false;
  /// Target relative accuracy of the iterative (Jacobi) methods.
  double tolerance = 1e-13;
  /// Iteration cap for the Jacobi methods (sweeps).
  std::size_t max_sweeps = 30;
  /// Worker threads of the parallel methods; 0 defers to the OpenMP
  /// runtime.  Results are bitwise independent of this value.
  std::size_t threads = 0;
  /// Rotation-parameter queue capacity of kPipelinedModifiedHestenes (the
  /// software analogue of the accelerator's param FIFO depth); other
  /// methods ignore it.  Results are bitwise independent of this value.
  std::size_t pipeline_queue_depth = 8;
  /// Observability sinks (see docs/OBSERVABILITY.md).  `trace` collects
  /// Chrome trace-event spans, `metrics` collects counters / gauges /
  /// series; null (the default) records nothing.  Recording never changes
  /// the arithmetic: results are byte-identical with and without sinks
  /// (tests/obs/test_obs.cpp).  The Hestenes-family methods emit
  /// sweep/round-level detail; baseline methods record run-level shape
  /// metrics only.  svd_batch() ignores per-item sinks (concurrent workers
  /// would interleave nondeterministically) and records batch-level spans
  /// and metrics instead.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Decomposes an arbitrary m x n matrix.  Throws hjsvd::Error for invalid
/// inputs (empty matrices; rectangular input to the two-sided method).
SvdResult svd(const Matrix& a, const SvdOptions& options = {});

/// Decomposes every matrix of a batch, spreading the work across a thread
/// pool — the serving-shaped workload of many small independent problems.
/// Matrices are assigned to workers by deterministic cost-based sharding
/// (arch::shard_by_cost, the multi-engine dispatch rule), and each matrix
/// is decomposed by the sequential path of options.method, so results[i] is
/// bitwise identical to svd(batch[i], options) at every thread count.
/// `threads` = 0 defers to the OpenMP runtime.  Throws hjsvd::Error if any
/// input is invalid (the whole batch is validated before any work starts).
std::vector<SvdResult> svd_batch(const std::vector<Matrix>& batch,
                                 const SvdOptions& options = {},
                                 std::size_t threads = 0);

/// Human-readable method name (for reports).
const char* svd_method_name(SvdMethod method);

}  // namespace hjsvd

#include "api/svd.hpp"

#include <cstdint>

#include "api/engine.hpp"
#include "baselines/golub_kahan.hpp"
#include "baselines/twosided_jacobi.hpp"
#include "common/error.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svd/hestenes.hpp"
#include "svd/mixed_hestenes.hpp"
#include "svd/parallel_sweep.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

/// Run-level observability wrapper of the non-Hestenes baselines, which have
/// no internal instrumentation: one span covering the whole decomposition
/// plus shape/outcome gauges.
template <class Fn>
SvdResult run_baseline(const Matrix& a, const SvdOptions& options,
                       const char* name, Fn&& fn) {
  auto* trace = obs::active(options.trace);
  auto* metrics = obs::active(options.metrics);
  obs::Span run_span;
  if (trace != nullptr) {
    const std::uint32_t tid = trace->register_thread(name);
    run_span = obs::Span(trace, tid, "svd", "run",
                         obs::ArgsBuilder()
                             .add("rows", a.rows())
                             .add("cols", a.cols())
                             .add("method", name)
                             .str());
  }
  SvdResult result = fn();
  run_span.end();
  if (auto* watchdog = obs::active(options.watchdog)) watchdog->check_deadline();
  if (auto* deadline = obs::active(options.deadline_poller);
      deadline != nullptr && deadline != options.watchdog)
    deadline->check_deadline();
  if (metrics != nullptr) {
    metrics->gauge_set("svd.rows", "1", static_cast<double>(a.rows()));
    metrics->gauge_set("svd.cols", "1", static_cast<double>(a.cols()));
    metrics->gauge_set("svd.sweeps", "sweeps",
                       static_cast<double>(result.sweeps));
    metrics->gauge_set("svd.converged", "bool", result.converged ? 1.0 : 0.0);
  }
  return result;
}

}  // namespace

SvdResult svd(const Matrix& a, const SvdOptions& options) {
  HestenesConfig hj;
  hj.max_sweeps = options.max_sweeps;
  hj.tolerance = options.tolerance;
  hj.compute_u = options.compute_u;
  hj.compute_v = options.compute_v;
  hj.simd_relaxed = options.simd_relaxed;
  hj.obs.trace = options.trace;
  hj.obs.metrics = options.metrics;
  hj.obs.watchdog = options.watchdog;
  hj.obs.deadline = options.deadline_poller;
  hj.obs.numerics = options.numerics;
  hj.workspace = options.workspace;
  ParallelSweepConfig par;
  par.threads = options.threads;
  switch (options.method) {
    case SvdMethod::kModifiedHestenes:
      return modified_hestenes_svd(a, hj);
    case SvdMethod::kPlainHestenes:
      return plain_hestenes_svd(a, hj);
    case SvdMethod::kParallelHestenes:
      return parallel_plain_hestenes_svd(a, hj, par);
    case SvdMethod::kParallelModifiedHestenes:
      return parallel_modified_hestenes_svd(a, hj, par);
    case SvdMethod::kPipelinedModifiedHestenes: {
      PipelinedSweepConfig pipe;
      pipe.threads = options.threads;
      pipe.queue_depth = options.pipeline_queue_depth;
      return pipelined_modified_hestenes_svd(a, hj, pipe);
    }
    case SvdMethod::kMixedModifiedHestenes: {
      MixedHestenesConfig mixed;
      mixed.base = hj;
      mixed.switch_threshold = options.mp_switch_threshold;
      return mixed_modified_hestenes_svd(a, mixed);
    }
    case SvdMethod::kTwoSidedJacobi: {
      TwoSidedConfig cfg;
      cfg.max_sweeps = options.max_sweeps;
      cfg.tolerance = options.tolerance;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return run_baseline(a, options, "two-sided Jacobi",
                          [&] { return twosided_jacobi_svd(a, cfg); });
    }
    case SvdMethod::kGolubKahan: {
      GolubKahanConfig cfg;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return run_baseline(a, options, "Golub-Kahan-Reinsch",
                          [&] { return golub_kahan_svd(a, cfg); });
    }
  }
  throw Error("unknown SVD method");
}

std::vector<SvdResult> svd_batch(const std::vector<Matrix>& batch,
                                 const SvdOptions& options,
                                 std::size_t threads,
                                 SvdBatchStats* stats) {
  // One batch scheduler in the library: an ephemeral warm engine.  The
  // resident pool and per-worker workspaces it owns live exactly as long
  // as this one wave; long-lived callers hold an EngineInstance instead.
  EngineInstance engine(EngineConfig{.threads = threads});
  return engine.decompose_batch(batch, options, stats);
}

const char* svd_method_name(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes: return "modified Hestenes-Jacobi";
    case SvdMethod::kPlainHestenes: return "plain Hestenes-Jacobi";
    case SvdMethod::kParallelHestenes: return "parallel Hestenes-Jacobi";
    case SvdMethod::kParallelModifiedHestenes:
      return "parallel modified Hestenes-Jacobi (block sweep)";
    case SvdMethod::kPipelinedModifiedHestenes:
      return "pipelined modified Hestenes-Jacobi (param-FIFO overlap)";
    case SvdMethod::kMixedModifiedHestenes:
      return "mixed-precision modified Hestenes-Jacobi (float -> double)";
    case SvdMethod::kTwoSidedJacobi: return "two-sided Jacobi";
    case SvdMethod::kGolubKahan: return "Golub-Kahan-Reinsch";
  }
  return "?";
}

const char* svd_method_token(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes: return "hestenes";
    case SvdMethod::kPlainHestenes: return "plain";
    case SvdMethod::kParallelHestenes: return "parallel";
    case SvdMethod::kParallelModifiedHestenes: return "parallel-modified";
    case SvdMethod::kPipelinedModifiedHestenes: return "pipelined-modified";
    case SvdMethod::kMixedModifiedHestenes: return "mixed-modified";
    case SvdMethod::kTwoSidedJacobi: return "two-sided";
    case SvdMethod::kGolubKahan: return "golub-kahan";
  }
  return "?";
}

bool svd_method_from_token(const std::string& token, SvdMethod* method) {
  if (token == "hestenes" || token == "modified") {
    *method = SvdMethod::kModifiedHestenes;
  } else if (token == "plain") {
    *method = SvdMethod::kPlainHestenes;
  } else if (token == "parallel") {
    *method = SvdMethod::kParallelHestenes;
  } else if (token == "parallel-modified" || token == "block") {
    *method = SvdMethod::kParallelModifiedHestenes;
  } else if (token == "pipelined-modified" || token == "pipelined") {
    *method = SvdMethod::kPipelinedModifiedHestenes;
  } else if (token == "mixed-modified" || token == "mixed") {
    *method = SvdMethod::kMixedModifiedHestenes;
  } else if (token == "two-sided" || token == "twosided") {
    *method = SvdMethod::kTwoSidedJacobi;
  } else if (token == "golub-kahan" || token == "gk") {
    *method = SvdMethod::kGolubKahan;
  } else {
    return false;
  }
  return true;
}

}  // namespace hjsvd

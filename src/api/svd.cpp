#include "api/svd.hpp"

#include <algorithm>
#include <exception>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "arch/multi_engine.hpp"
#include "baselines/golub_kahan.hpp"
#include "baselines/twosided_jacobi.hpp"
#include "common/error.hpp"
#include "common/pool.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svd/hestenes.hpp"
#include "svd/mixed_hestenes.hpp"
#include "svd/parallel_sweep.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

std::size_t default_threads() {
#ifdef _OPENMP
  return static_cast<std::size_t>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// Run-level observability wrapper of the non-Hestenes baselines, which have
/// no internal instrumentation: one span covering the whole decomposition
/// plus shape/outcome gauges.
template <class Fn>
SvdResult run_baseline(const Matrix& a, const SvdOptions& options,
                       const char* name, Fn&& fn) {
  auto* trace = obs::active(options.trace);
  auto* metrics = obs::active(options.metrics);
  obs::Span run_span;
  if (trace != nullptr) {
    const std::uint32_t tid = trace->register_thread(name);
    run_span = obs::Span(trace, tid, "svd", "run",
                         obs::ArgsBuilder()
                             .add("rows", a.rows())
                             .add("cols", a.cols())
                             .add("method", name)
                             .str());
  }
  SvdResult result = fn();
  run_span.end();
  if (auto* watchdog = obs::active(options.watchdog)) watchdog->check_deadline();
  if (metrics != nullptr) {
    metrics->gauge_set("svd.rows", "1", static_cast<double>(a.rows()));
    metrics->gauge_set("svd.cols", "1", static_cast<double>(a.cols()));
    metrics->gauge_set("svd.sweeps", "sweeps",
                       static_cast<double>(result.sweeps));
    metrics->gauge_set("svd.converged", "bool", result.converged ? 1.0 : 0.0);
  }
  return result;
}

/// True for the one-sided Jacobi family, whose parallel engines are
/// bitwise identical to the sequential kRoundRobin path at every thread
/// count — the property that makes nested batch splits result-preserving.
bool is_hestenes_family(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes:
    case SvdMethod::kPlainHestenes:
    case SvdMethod::kParallelHestenes:
    case SvdMethod::kParallelModifiedHestenes:
    case SvdMethod::kPipelinedModifiedHestenes:
      return true;
    case SvdMethod::kMixedModifiedHestenes:
      // Mixed precision has no bitwise-identical parallel twin, so batch
      // items must never be split onto its behalf.
      return false;
    case SvdMethod::kTwoSidedJacobi:
    case SvdMethod::kGolubKahan:
      return false;
  }
  return false;
}

/// The engine used when a batch item is split across borrowed workers:
/// sequential methods map to their bitwise-identical parallel twin, the
/// already-parallel methods just run with more threads.
SvdMethod split_counterpart(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes:
      return SvdMethod::kParallelModifiedHestenes;
    case SvdMethod::kPlainHestenes:
      return SvdMethod::kParallelHestenes;
    default:
      return method;
  }
}

}  // namespace

SvdResult svd(const Matrix& a, const SvdOptions& options) {
  HestenesConfig hj;
  hj.max_sweeps = options.max_sweeps;
  hj.tolerance = options.tolerance;
  hj.compute_u = options.compute_u;
  hj.compute_v = options.compute_v;
  hj.simd_relaxed = options.simd_relaxed;
  hj.obs.trace = options.trace;
  hj.obs.metrics = options.metrics;
  hj.obs.watchdog = options.watchdog;
  hj.obs.numerics = options.numerics;
  ParallelSweepConfig par;
  par.threads = options.threads;
  switch (options.method) {
    case SvdMethod::kModifiedHestenes:
      return modified_hestenes_svd(a, hj);
    case SvdMethod::kPlainHestenes:
      return plain_hestenes_svd(a, hj);
    case SvdMethod::kParallelHestenes:
      return parallel_plain_hestenes_svd(a, hj, par);
    case SvdMethod::kParallelModifiedHestenes:
      return parallel_modified_hestenes_svd(a, hj, par);
    case SvdMethod::kPipelinedModifiedHestenes: {
      PipelinedSweepConfig pipe;
      pipe.threads = options.threads;
      pipe.queue_depth = options.pipeline_queue_depth;
      return pipelined_modified_hestenes_svd(a, hj, pipe);
    }
    case SvdMethod::kMixedModifiedHestenes: {
      MixedHestenesConfig mixed;
      mixed.base = hj;
      mixed.switch_threshold = options.mp_switch_threshold;
      return mixed_modified_hestenes_svd(a, mixed);
    }
    case SvdMethod::kTwoSidedJacobi: {
      TwoSidedConfig cfg;
      cfg.max_sweeps = options.max_sweeps;
      cfg.tolerance = options.tolerance;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return run_baseline(a, options, "two-sided Jacobi",
                          [&] { return twosided_jacobi_svd(a, cfg); });
    }
    case SvdMethod::kGolubKahan: {
      GolubKahanConfig cfg;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return run_baseline(a, options, "Golub-Kahan-Reinsch",
                          [&] { return golub_kahan_svd(a, cfg); });
    }
  }
  throw Error("unknown SVD method");
}

std::vector<SvdResult> svd_batch(const std::vector<Matrix>& batch,
                                 const SvdOptions& options,
                                 std::size_t threads,
                                 SvdBatchStats* stats) {
  // Validate the whole batch — shape *and* method constraints — before any
  // work starts, so a bad entry cannot leave a half-computed result
  // vector.  Data-dependent failures (non-finite entries) are the engines'
  // to detect; they surface mid-run through the error contract below.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    HJSVD_ENSURE(!batch[i].empty(), "svd_batch: item " + std::to_string(i) +
                                        " is an empty matrix");
    if (options.method == SvdMethod::kTwoSidedJacobi)
      HJSVD_ENSURE(batch[i].rows() == batch[i].cols(),
                   "svd_batch: item " + std::to_string(i) + " (" +
                       std::to_string(batch[i].rows()) + "x" +
                       std::to_string(batch[i].cols()) +
                       ") — two-sided Jacobi requires square matrices");
  }
  if (stats != nullptr) *stats = SvdBatchStats{};
  std::vector<SvdResult> results(batch.size());
  if (batch.empty()) return results;

  // Per-item sinks are stripped: concurrent workers would interleave their
  // emissions nondeterministically.  The batch layer records its own
  // per-item spans (one timeline per pool worker) and batch.* metrics.
  SvdOptions per_item = options;
  per_item.trace = nullptr;
  per_item.metrics = nullptr;
  per_item.watchdog = nullptr;  // per-item sweep series interleave; only the
                                // deadline is meaningful at batch scope
  // The numerics probe stays attached: its aggregates (counters, histogram,
  // watermarks) are order-independent and mutex-protected, so concurrent
  // items feed one probe safely and the batch-level signature is
  // deterministic even though the feeding order is not.
  auto* trace = obs::active(options.trace);
  auto* metrics = obs::active(options.metrics);
  auto* watchdog = obs::active(options.watchdog);

  // Jacobi sweep cost ~ m n^2 (Gram) + n^3 (updates); LPT seeding over
  // that estimate balances mixed-size batches (the multi-engine rule), and
  // work stealing absorbs what the estimate gets wrong (convergence speed
  // is data-dependent).
  std::vector<double> costs(batch.size());
  double total_cost = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto m = static_cast<double>(batch[i].rows());
    const auto n = static_cast<double>(batch[i].cols());
    costs[i] = m * n * n + n * n * n;
    total_cost += costs[i];
  }
  const std::size_t requested =
      std::max<std::size_t>(1, threads == 0 ? default_threads() : threads);
  // One pool worker per item at most; the surplus of a larger `threads`
  // budget is not wasted — nested splits borrow up to `requested` threads
  // for a single item.
  const std::size_t workers = std::min(requested, batch.size());

  // Nested-parallelism policy: dominant items (by estimated cost fraction)
  // may expand onto borrowed workers.  Restricted to the Hestenes family,
  // whose parallel engines are bitwise deterministic.
  std::vector<std::size_t> max_helpers(batch.size(), 0);
  if (options.batch_split_min_fraction > 0.0 && requested > 1 &&
      is_hestenes_family(options.method)) {
    for (std::size_t i = 0; i < batch.size(); ++i)
      if (costs[i] >= options.batch_split_min_fraction * total_cost)
        max_helpers[i] = requested - 1;
  }

  const auto bins = arch::shard_by_cost(costs, workers);

  const double batch_t0_us = trace != nullptr ? trace->now_us() : 0.0;
  std::uint32_t batch_tid = 0;
  if (trace != nullptr)
    batch_tid = trace->register_thread("svd_batch coordinator");
  // Timelines are per pool worker (exactly `workers` of them), written by
  // each worker thread into its own slot from the start hook.
  std::vector<std::uint32_t> worker_tids(workers, 0);

  WorkStealingOptions pool_opts;
  pool_opts.workers = workers;
  pool_opts.total_width = requested;
  pool_opts.max_helpers = max_helpers;
  if (trace != nullptr)
    pool_opts.worker_start = [&](std::size_t w) {
      worker_tids[w] =
          trace->register_thread("svd_batch worker " + std::to_string(w));
    };

  // Per-item exception slots: single writer each, scanned in index order
  // after the join so the lowest-index failure wins deterministically.
  std::vector<std::exception_ptr> item_errors(batch.size());

  const auto run_item = [&](const PoolTaskInfo& info) {
    const Matrix& a = batch[info.task];
    obs::Span item_span;
    if (trace != nullptr) {
      trace->emit_counter(worker_tids[info.worker], "batch",
                          "batch.queue.occupancy", trace->now_us(),
                          static_cast<double>(info.queued));
      item_span = obs::Span(trace, worker_tids[info.worker], "batch", "item",
                            obs::ArgsBuilder()
                                .add("index", info.task)
                                .add("rows", a.rows())
                                .add("cols", a.cols())
                                .add("stolen", info.stolen)
                                .add("helpers", info.helpers)
                                .str());
    }
    try {
      SvdOptions item_opts = per_item;
      if (info.helpers > 0) {
        item_opts.method = split_counterpart(options.method);
        item_opts.threads = 1 + info.helpers;
      } else {
        item_opts.threads = 1;
      }
      results[info.task] = svd(a, item_opts);
    } catch (const std::exception& e) {
      item_errors[info.task] = std::make_exception_ptr(
          Error("svd_batch: item " + std::to_string(info.task) + " (" +
                std::to_string(a.rows()) + "x" + std::to_string(a.cols()) +
                "): " + e.what()));
    } catch (...) {
      item_errors[info.task] = std::current_exception();
    }
    if (watchdog != nullptr) watchdog->check_deadline();
  };

  const PoolStats pool = run_work_stealing(costs, bins, pool_opts, run_item);

  std::size_t failed = 0;
  for (const auto& e : item_errors)
    if (e) ++failed;

  if (trace != nullptr)
    trace->emit_complete(batch_tid, "batch", "svd_batch", batch_t0_us,
                         trace->now_us() - batch_t0_us,
                         obs::ArgsBuilder()
                             .add("items", batch.size())
                             .add("workers", workers)
                             .add("requested_workers", requested)
                             .add("steals", pool.steals)
                             .add("nested_splits", pool.nested_runs)
                             .str());
  if (metrics != nullptr) {
    metrics->counter_add("batch.items", "matrices", batch.size());
    metrics->counter_add("batch.items_ok", "matrices", batch.size() - failed);
    metrics->counter_add("batch.items_failed", "matrices", failed);
    // batch.workers reports the pool workers actually spawned — the same
    // number as the "svd_batch worker N" timelines — never the pre-clamp
    // request, so hjsvd_report per-worker tables match reality.
    metrics->gauge_set("batch.workers", "threads",
                       static_cast<double>(workers));
    metrics->gauge_set("batch.workers.requested", "threads",
                       static_cast<double>(requested));
    metrics->gauge_set("batch.wall_s", "s", pool.wall_s);
    metrics->counter_add("batch.steals", "tasks", pool.steals);
    metrics->counter_add("batch.nested.splits", "matrices", pool.nested_runs);
    metrics->counter_add("batch.nested.helpers", "threads",
                         pool.helpers_granted);
    for (double c : costs) metrics->hist_record("batch.item_cost", "flops", c);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::string prefix = "batch.worker." + std::to_string(w);
      metrics->gauge_set(prefix + ".busy_s", "s", pool.busy_s[w]);
      metrics->gauge_set(prefix + ".idle_s", "s", pool.idle_s[w]);
    }
    for (std::size_t k = 0; k < pool.occupancy.size(); ++k)
      metrics->series_append("batch.queue.occupancy", "tasks", k,
                             static_cast<double>(pool.occupancy[k]));
  }
  if (stats != nullptr) {
    stats->items = batch.size();
    stats->workers = pool.workers;
    stats->requested_workers = requested;
    stats->steals = pool.steals;
    stats->nested_splits = pool.nested_runs;
    stats->helpers_granted = pool.helpers_granted;
    stats->items_ok = batch.size() - failed;
    stats->items_failed = failed;
    stats->wall_s = pool.wall_s;
    stats->worker_busy_s = pool.busy_s;
    stats->worker_idle_s = pool.idle_s;
  }
  for (const auto& e : item_errors)
    if (e) std::rethrow_exception(e);
  return results;
}

const char* svd_method_name(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes: return "modified Hestenes-Jacobi";
    case SvdMethod::kPlainHestenes: return "plain Hestenes-Jacobi";
    case SvdMethod::kParallelHestenes: return "parallel Hestenes-Jacobi";
    case SvdMethod::kParallelModifiedHestenes:
      return "parallel modified Hestenes-Jacobi (block sweep)";
    case SvdMethod::kPipelinedModifiedHestenes:
      return "pipelined modified Hestenes-Jacobi (param-FIFO overlap)";
    case SvdMethod::kMixedModifiedHestenes:
      return "mixed-precision modified Hestenes-Jacobi (float -> double)";
    case SvdMethod::kTwoSidedJacobi: return "two-sided Jacobi";
    case SvdMethod::kGolubKahan: return "Golub-Kahan-Reinsch";
  }
  return "?";
}

}  // namespace hjsvd

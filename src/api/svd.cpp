#include "api/svd.hpp"

#include <algorithm>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "arch/multi_engine.hpp"
#include "baselines/golub_kahan.hpp"
#include "baselines/twosided_jacobi.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svd/hestenes.hpp"
#include "svd/parallel_sweep.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

std::size_t default_threads() {
#ifdef _OPENMP
  return static_cast<std::size_t>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// Run-level observability wrapper of the non-Hestenes baselines, which have
/// no internal instrumentation: one span covering the whole decomposition
/// plus shape/outcome gauges.
template <class Fn>
SvdResult run_baseline(const Matrix& a, const SvdOptions& options,
                       const char* name, Fn&& fn) {
  auto* trace = obs::active(options.trace);
  auto* metrics = obs::active(options.metrics);
  obs::Span run_span;
  if (trace != nullptr) {
    const std::uint32_t tid = trace->register_thread(name);
    run_span = obs::Span(trace, tid, "svd", "run",
                         obs::ArgsBuilder()
                             .add("rows", a.rows())
                             .add("cols", a.cols())
                             .add("method", name)
                             .str());
  }
  SvdResult result = fn();
  run_span.end();
  if (metrics != nullptr) {
    metrics->gauge_set("svd.rows", "1", static_cast<double>(a.rows()));
    metrics->gauge_set("svd.cols", "1", static_cast<double>(a.cols()));
    metrics->gauge_set("svd.sweeps", "sweeps",
                       static_cast<double>(result.sweeps));
    metrics->gauge_set("svd.converged", "bool", result.converged ? 1.0 : 0.0);
  }
  return result;
}

}  // namespace

SvdResult svd(const Matrix& a, const SvdOptions& options) {
  HestenesConfig hj;
  hj.max_sweeps = options.max_sweeps;
  hj.tolerance = options.tolerance;
  hj.compute_u = options.compute_u;
  hj.compute_v = options.compute_v;
  hj.obs.trace = options.trace;
  hj.obs.metrics = options.metrics;
  ParallelSweepConfig par;
  par.threads = options.threads;
  switch (options.method) {
    case SvdMethod::kModifiedHestenes:
      return modified_hestenes_svd(a, hj);
    case SvdMethod::kPlainHestenes:
      return plain_hestenes_svd(a, hj);
    case SvdMethod::kParallelHestenes:
      return parallel_plain_hestenes_svd(a, hj, par);
    case SvdMethod::kParallelModifiedHestenes:
      return parallel_modified_hestenes_svd(a, hj, par);
    case SvdMethod::kPipelinedModifiedHestenes: {
      PipelinedSweepConfig pipe;
      pipe.threads = options.threads;
      pipe.queue_depth = options.pipeline_queue_depth;
      return pipelined_modified_hestenes_svd(a, hj, pipe);
    }
    case SvdMethod::kTwoSidedJacobi: {
      TwoSidedConfig cfg;
      cfg.max_sweeps = options.max_sweeps;
      cfg.tolerance = options.tolerance;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return run_baseline(a, options, "two-sided Jacobi",
                          [&] { return twosided_jacobi_svd(a, cfg); });
    }
    case SvdMethod::kGolubKahan: {
      GolubKahanConfig cfg;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return run_baseline(a, options, "Golub-Kahan-Reinsch",
                          [&] { return golub_kahan_svd(a, cfg); });
    }
  }
  throw Error("unknown SVD method");
}

std::vector<SvdResult> svd_batch(const std::vector<Matrix>& batch,
                                 const SvdOptions& options,
                                 std::size_t threads) {
  // Validate the whole batch before any work starts, so a bad entry cannot
  // leave a half-computed result vector.
  for (const Matrix& a : batch)
    HJSVD_ENSURE(!a.empty(), "batch entries must be non-empty matrices");
  std::vector<SvdResult> results(batch.size());
  if (batch.empty()) return results;

  // Each matrix runs on exactly one worker through the sequential path, so
  // results are bitwise independent of the thread count; the parallel
  // methods degrade gracefully (nested OpenMP regions serialize).
  // Per-item sinks are stripped: concurrent workers would interleave their
  // emissions nondeterministically.  The batch layer records its own
  // per-matrix spans (one timeline per shard worker) and batch.* metrics.
  SvdOptions per_item = options;
  per_item.threads = 1;
  per_item.trace = nullptr;
  per_item.metrics = nullptr;
  auto* trace = obs::active(options.trace);
  auto* metrics = obs::active(options.metrics);

  // Jacobi sweep cost ~ m n^2 (Gram) + n^3 (updates); LPT sharding over
  // that estimate balances mixed-size batches (the multi-engine rule).
  std::vector<double> costs(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto m = static_cast<double>(batch[i].rows());
    const auto n = static_cast<double>(batch[i].cols());
    costs[i] = m * n * n + n * n * n;
  }
  const std::size_t workers =
      std::min(threads == 0 ? default_threads() : threads, batch.size());
  const auto shards = arch::shard_by_cost(costs, std::max<std::size_t>(1, workers));

  std::exception_ptr first_error;
  const auto nshards = static_cast<std::ptrdiff_t>(shards.size());
  const double batch_t0_us = trace != nullptr ? trace->now_us() : 0.0;
  std::uint32_t batch_tid = 0;
  if (trace != nullptr)
    batch_tid = trace->register_thread("svd_batch coordinator");
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1) \
    num_threads(static_cast<int>(std::max<std::size_t>(1, workers)))
#endif
  for (std::ptrdiff_t s = 0; s < nshards; ++s) {
    std::uint32_t shard_tid = 0;
    if (trace != nullptr)
      shard_tid = trace->register_thread("svd_batch worker " +
                                         std::to_string(s));
    for (std::size_t idx : shards[static_cast<std::size_t>(s)]) {
      obs::Span item_span;
      if (trace != nullptr)
        item_span = obs::Span(trace, shard_tid, "batch", "item",
                              obs::ArgsBuilder()
                                  .add("index", idx)
                                  .add("rows", batch[idx].rows())
                                  .add("cols", batch[idx].cols())
                                  .str());
      try {
        results[idx] = svd(batch[idx], per_item);
      } catch (...) {
#ifdef _OPENMP
#pragma omp critical(hjsvd_svd_batch_error)
#endif
        {
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
  }
  if (trace != nullptr)
    trace->emit_complete(batch_tid, "batch", "svd_batch", batch_t0_us,
                         trace->now_us() - batch_t0_us,
                         obs::ArgsBuilder()
                             .add("items", batch.size())
                             .add("workers", workers)
                             .str());
  if (metrics != nullptr) {
    metrics->counter_add("batch.items", "matrices", batch.size());
    metrics->gauge_set("batch.workers", "threads",
                       static_cast<double>(std::max<std::size_t>(1, workers)));
    for (double c : costs) metrics->hist_record("batch.item_cost", "flops", c);
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

const char* svd_method_name(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes: return "modified Hestenes-Jacobi";
    case SvdMethod::kPlainHestenes: return "plain Hestenes-Jacobi";
    case SvdMethod::kParallelHestenes: return "parallel Hestenes-Jacobi";
    case SvdMethod::kParallelModifiedHestenes:
      return "parallel modified Hestenes-Jacobi (block sweep)";
    case SvdMethod::kPipelinedModifiedHestenes:
      return "pipelined modified Hestenes-Jacobi (param-FIFO overlap)";
    case SvdMethod::kTwoSidedJacobi: return "two-sided Jacobi";
    case SvdMethod::kGolubKahan: return "Golub-Kahan-Reinsch";
  }
  return "?";
}

}  // namespace hjsvd

#include "api/svd.hpp"

#include "baselines/golub_kahan.hpp"
#include "baselines/parallel_hestenes.hpp"
#include "baselines/twosided_jacobi.hpp"
#include "common/error.hpp"
#include "svd/hestenes.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {

SvdResult svd(const Matrix& a, const SvdOptions& options) {
  HestenesConfig hj;
  hj.max_sweeps = options.max_sweeps;
  hj.tolerance = options.tolerance;
  hj.compute_u = options.compute_u;
  hj.compute_v = options.compute_v;
  switch (options.method) {
    case SvdMethod::kModifiedHestenes:
      return modified_hestenes_svd(a, hj);
    case SvdMethod::kPlainHestenes:
      return plain_hestenes_svd(a, hj);
    case SvdMethod::kParallelHestenes:
      return parallel_hestenes_svd(a, hj);
    case SvdMethod::kTwoSidedJacobi: {
      TwoSidedConfig cfg;
      cfg.max_sweeps = options.max_sweeps;
      cfg.tolerance = options.tolerance;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return twosided_jacobi_svd(a, cfg);
    }
    case SvdMethod::kGolubKahan: {
      GolubKahanConfig cfg;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return golub_kahan_svd(a, cfg);
    }
  }
  throw Error("unknown SVD method");
}

const char* svd_method_name(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes: return "modified Hestenes-Jacobi";
    case SvdMethod::kPlainHestenes: return "plain Hestenes-Jacobi";
    case SvdMethod::kParallelHestenes: return "parallel Hestenes-Jacobi";
    case SvdMethod::kTwoSidedJacobi: return "two-sided Jacobi";
    case SvdMethod::kGolubKahan: return "Golub-Kahan-Reinsch";
  }
  return "?";
}

}  // namespace hjsvd

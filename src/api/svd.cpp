#include "api/svd.hpp"

#include <algorithm>
#include <exception>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "arch/multi_engine.hpp"
#include "baselines/golub_kahan.hpp"
#include "baselines/twosided_jacobi.hpp"
#include "common/error.hpp"
#include "svd/hestenes.hpp"
#include "svd/parallel_sweep.hpp"
#include "svd/plain_hestenes.hpp"

namespace hjsvd {
namespace {

std::size_t default_threads() {
#ifdef _OPENMP
  return static_cast<std::size_t>(omp_get_max_threads());
#else
  return 1;
#endif
}

}  // namespace

SvdResult svd(const Matrix& a, const SvdOptions& options) {
  HestenesConfig hj;
  hj.max_sweeps = options.max_sweeps;
  hj.tolerance = options.tolerance;
  hj.compute_u = options.compute_u;
  hj.compute_v = options.compute_v;
  ParallelSweepConfig par;
  par.threads = options.threads;
  switch (options.method) {
    case SvdMethod::kModifiedHestenes:
      return modified_hestenes_svd(a, hj);
    case SvdMethod::kPlainHestenes:
      return plain_hestenes_svd(a, hj);
    case SvdMethod::kParallelHestenes:
      return parallel_plain_hestenes_svd(a, hj, par);
    case SvdMethod::kParallelModifiedHestenes:
      return parallel_modified_hestenes_svd(a, hj, par);
    case SvdMethod::kPipelinedModifiedHestenes: {
      PipelinedSweepConfig pipe;
      pipe.threads = options.threads;
      pipe.queue_depth = options.pipeline_queue_depth;
      return pipelined_modified_hestenes_svd(a, hj, pipe);
    }
    case SvdMethod::kTwoSidedJacobi: {
      TwoSidedConfig cfg;
      cfg.max_sweeps = options.max_sweeps;
      cfg.tolerance = options.tolerance;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return twosided_jacobi_svd(a, cfg);
    }
    case SvdMethod::kGolubKahan: {
      GolubKahanConfig cfg;
      cfg.compute_u = options.compute_u;
      cfg.compute_v = options.compute_v;
      return golub_kahan_svd(a, cfg);
    }
  }
  throw Error("unknown SVD method");
}

std::vector<SvdResult> svd_batch(const std::vector<Matrix>& batch,
                                 const SvdOptions& options,
                                 std::size_t threads) {
  // Validate the whole batch before any work starts, so a bad entry cannot
  // leave a half-computed result vector.
  for (const Matrix& a : batch)
    HJSVD_ENSURE(!a.empty(), "batch entries must be non-empty matrices");
  std::vector<SvdResult> results(batch.size());
  if (batch.empty()) return results;

  // Each matrix runs on exactly one worker through the sequential path, so
  // results are bitwise independent of the thread count; the parallel
  // methods degrade gracefully (nested OpenMP regions serialize).
  SvdOptions per_item = options;
  per_item.threads = 1;

  // Jacobi sweep cost ~ m n^2 (Gram) + n^3 (updates); LPT sharding over
  // that estimate balances mixed-size batches (the multi-engine rule).
  std::vector<double> costs(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto m = static_cast<double>(batch[i].rows());
    const auto n = static_cast<double>(batch[i].cols());
    costs[i] = m * n * n + n * n * n;
  }
  const std::size_t workers =
      std::min(threads == 0 ? default_threads() : threads, batch.size());
  const auto shards = arch::shard_by_cost(costs, std::max<std::size_t>(1, workers));

  std::exception_ptr first_error;
  const auto nshards = static_cast<std::ptrdiff_t>(shards.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1) \
    num_threads(static_cast<int>(std::max<std::size_t>(1, workers)))
#endif
  for (std::ptrdiff_t s = 0; s < nshards; ++s) {
    for (std::size_t idx : shards[static_cast<std::size_t>(s)]) {
      try {
        results[idx] = svd(batch[idx], per_item);
      } catch (...) {
#ifdef _OPENMP
#pragma omp critical(hjsvd_svd_batch_error)
#endif
        {
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

const char* svd_method_name(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes: return "modified Hestenes-Jacobi";
    case SvdMethod::kPlainHestenes: return "plain Hestenes-Jacobi";
    case SvdMethod::kParallelHestenes: return "parallel Hestenes-Jacobi";
    case SvdMethod::kParallelModifiedHestenes:
      return "parallel modified Hestenes-Jacobi (block sweep)";
    case SvdMethod::kPipelinedModifiedHestenes:
      return "pipelined modified Hestenes-Jacobi (param-FIFO overlap)";
    case SvdMethod::kTwoSidedJacobi: return "two-sided Jacobi";
    case SvdMethod::kGolubKahan: return "Golub-Kahan-Reinsch";
  }
  return "?";
}

}  // namespace hjsvd

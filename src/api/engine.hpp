// Warm, reusable decomposition engine: the serving-shaped front door.
//
// hjsvd::svd() / svd_batch() are one-shot — every call pays thread spawns
// (batch) and working-buffer allocations (all methods).  A long-lived
// service decomposing thousands of requests wants both costs amortized to
// zero, which is what an EngineInstance provides:
//
//   * a resident WorkStealingPool (common/pool.hpp), spawned once, parked
//     between batch waves;
//   * one Workspace scratch arena (svd/workspace.hpp) per pool worker plus
//     one for the calling thread, so the Gram/V/finalize buffers of every
//     engine run are re-shaped in place instead of reallocated.
//
// Determinism contract: decompose() is bitwise identical to svd() with the
// same options, and decompose_batch()[i] is bitwise identical to
// svd(batch[i], options), at every thread count — warm buffers come back
// zeroed, and the pool's scheduling never influences results
// (tests/api/test_engine.cpp asserts both).
//
// The free svd_batch() delegates to an ephemeral EngineInstance, so there
// is exactly one batch scheduler in the library.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "api/svd.hpp"
#include "svd/workspace.hpp"

namespace hjsvd {

class WorkStealingPool;

struct EngineConfig {
  /// Worker-thread budget of batch waves (resident pool size); 0 defers to
  /// the OpenMP runtime, matching svd_batch's `threads` parameter.
  std::size_t threads = 0;
};

class EngineInstance {
 public:
  explicit EngineInstance(const EngineConfig& config = {});
  ~EngineInstance();
  EngineInstance(const EngineInstance&) = delete;
  EngineInstance& operator=(const EngineInstance&) = delete;

  /// Resolved worker-thread budget (config.threads, or the OpenMP default).
  std::size_t threads() const { return threads_; }

  /// Decomposes one matrix on the calling thread using the caller-side
  /// workspace.  Bitwise identical to svd(a, options).  Not safe to call
  /// concurrently with itself (one caller-side arena); decompose_batch
  /// waves use their own per-worker arenas and never touch it.
  SvdResult decompose(const Matrix& a, const SvdOptions& options = {});

  /// Decomposes every matrix of the batch through the resident pool —
  /// svd_batch() semantics (validation, LPT seeding, stealing, nested
  /// splits, batch.* metrics, lowest-index error) with warm threads and
  /// warm per-worker workspaces.
  ///
  /// Error contract: with `item_errors` null, rethrows the lowest-index
  /// per-item failure exactly like svd_batch().  With `item_errors`
  /// non-null it is resized to the batch and filled with each item's
  /// exception (null entry = success), and nothing is rethrown — the
  /// serving mode, where one poisoned request must not take down the
  /// wave's replies.  Batch-level validation errors (empty matrices,
  /// method shape constraints) always throw; they are caller bugs, not
  /// data-dependent failures.
  std::vector<SvdResult> decompose_batch(
      const std::vector<Matrix>& batch, const SvdOptions& options = {},
      SvdBatchStats* stats = nullptr,
      std::vector<std::exception_ptr>* item_errors = nullptr);

  /// Sum of Workspace::reuse_total over every arena this engine owns —
  /// acquires that re-shaped a retained buffer without allocating.  Grows
  /// while alloc_total() stays flat once the engine is warm: the
  /// serve.workspace.reuse_total signal.
  std::uint64_t workspace_reuse_total() const;
  /// Sum of Workspace::alloc_total over every arena (cold-path acquires).
  std::uint64_t workspace_alloc_total() const;

 private:
  /// Spawns the resident pool on first use (decompose() alone never needs
  /// threads).
  WorkStealingPool& ensure_pool();

  std::size_t threads_ = 1;
  std::unique_ptr<WorkStealingPool> pool_;
  std::vector<std::unique_ptr<Workspace>> worker_ws_;  ///< One per pool worker.
  Workspace caller_ws_;                                ///< decompose() arena.
};

}  // namespace hjsvd

#include "api/engine.hpp"

#include <algorithm>
#include <string>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "arch/multi_engine.hpp"
#include "common/error.hpp"
#include "common/pool.hpp"
#include "obs/live.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hjsvd {
namespace {

std::size_t default_threads() {
#ifdef _OPENMP
  return static_cast<std::size_t>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// True for the one-sided Jacobi family, whose parallel engines are
/// bitwise identical to the sequential kRoundRobin path at every thread
/// count — the property that makes nested batch splits result-preserving.
bool is_hestenes_family(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes:
    case SvdMethod::kPlainHestenes:
    case SvdMethod::kParallelHestenes:
    case SvdMethod::kParallelModifiedHestenes:
    case SvdMethod::kPipelinedModifiedHestenes:
      return true;
    case SvdMethod::kMixedModifiedHestenes:
      // Mixed precision has no bitwise-identical parallel twin, so batch
      // items must never be split onto its behalf.
      return false;
    case SvdMethod::kTwoSidedJacobi:
    case SvdMethod::kGolubKahan:
      return false;
  }
  return false;
}

/// The engine used when a batch item is split across borrowed workers:
/// sequential methods map to their bitwise-identical parallel twin, the
/// already-parallel methods just run with more threads.
SvdMethod split_counterpart(SvdMethod method) {
  switch (method) {
    case SvdMethod::kModifiedHestenes:
      return SvdMethod::kParallelModifiedHestenes;
    case SvdMethod::kPlainHestenes:
      return SvdMethod::kParallelHestenes;
    default:
      return method;
  }
}

}  // namespace

EngineInstance::EngineInstance(const EngineConfig& config)
    : threads_(std::max<std::size_t>(
          1, config.threads == 0 ? default_threads() : config.threads)) {}

EngineInstance::~EngineInstance() = default;

WorkStealingPool& EngineInstance::ensure_pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<WorkStealingPool>(threads_);
    worker_ws_.reserve(threads_);
    for (std::size_t w = 0; w < threads_; ++w)
      worker_ws_.push_back(std::make_unique<Workspace>());
  }
  return *pool_;
}

SvdResult EngineInstance::decompose(const Matrix& a,
                                    const SvdOptions& options) {
  SvdOptions opts = options;
  if (opts.workspace == nullptr) opts.workspace = &caller_ws_;
  return svd(a, opts);
}

std::uint64_t EngineInstance::workspace_reuse_total() const {
  std::uint64_t total = caller_ws_.reuse_total();
  for (const auto& ws : worker_ws_) total += ws->reuse_total();
  return total;
}

std::uint64_t EngineInstance::workspace_alloc_total() const {
  std::uint64_t total = caller_ws_.alloc_total();
  for (const auto& ws : worker_ws_) total += ws->alloc_total();
  return total;
}

std::vector<SvdResult> EngineInstance::decompose_batch(
    const std::vector<Matrix>& batch, const SvdOptions& options,
    SvdBatchStats* stats, std::vector<std::exception_ptr>* item_errors_out) {
  // Validate the whole batch — shape *and* method constraints — before any
  // work starts, so a bad entry cannot leave a half-computed result
  // vector.  Data-dependent failures (non-finite entries) are the engines'
  // to detect; they surface mid-run through the error contract below.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    HJSVD_ENSURE(!batch[i].empty(), "svd_batch: item " + std::to_string(i) +
                                        " is an empty matrix");
    if (options.method == SvdMethod::kTwoSidedJacobi)
      HJSVD_ENSURE(batch[i].rows() == batch[i].cols(),
                   "svd_batch: item " + std::to_string(i) + " (" +
                       std::to_string(batch[i].rows()) + "x" +
                       std::to_string(batch[i].cols()) +
                       ") — two-sided Jacobi requires square matrices");
  }
  if (stats != nullptr) *stats = SvdBatchStats{};
  if (item_errors_out != nullptr) {
    item_errors_out->clear();
    item_errors_out->resize(batch.size());
  }
  std::vector<SvdResult> results(batch.size());
  if (batch.empty()) return results;

  // Per-item sinks are stripped: concurrent workers would interleave their
  // emissions nondeterministically.  The batch layer records its own
  // per-item spans (one timeline per pool worker) and batch.* metrics.
  SvdOptions per_item = options;
  per_item.trace = nullptr;
  per_item.metrics = nullptr;
  per_item.watchdog = nullptr;  // per-item sweep series interleave; only the
                                // deadline is meaningful at batch scope
  // The deadline half of the batch watchdog *is* threaded into every item:
  // the per-sweep hook polls check_deadline() (wall-clock only, no
  // convergence feed), so one long in-flight decomposition cannot overrun
  // --deadline-s unobserved until it finishes.
  per_item.deadline_poller = options.watchdog;
  // The numerics probe stays attached: its aggregates (counters, histogram,
  // watermarks) are order-independent and mutex-protected, so concurrent
  // items feed one probe safely and the batch-level signature is
  // deterministic even though the feeding order is not.
  auto* trace = obs::active(options.trace);
  auto* metrics = obs::active(options.metrics);
  auto* watchdog = obs::active(options.watchdog);

  // Jacobi sweep cost ~ m n^2 (Gram) + n^3 (updates); LPT seeding over
  // that estimate balances mixed-size batches (the multi-engine rule), and
  // work stealing absorbs what the estimate gets wrong (convergence speed
  // is data-dependent).
  std::vector<double> costs(batch.size());
  double total_cost = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto m = static_cast<double>(batch[i].rows());
    const auto n = static_cast<double>(batch[i].cols());
    costs[i] = m * n * n + n * n * n;
    total_cost += costs[i];
  }
  const std::size_t requested = threads_;
  // One pool worker per item at most; the surplus of a larger `threads`
  // budget is not wasted — nested splits borrow up to `requested` threads
  // for a single item.
  const std::size_t workers = std::min(requested, batch.size());

  // Nested-parallelism policy: dominant items (by estimated cost fraction)
  // may expand onto borrowed workers.  Restricted to the Hestenes family,
  // whose parallel engines are bitwise deterministic.
  std::vector<std::size_t> max_helpers(batch.size(), 0);
  if (options.batch_split_min_fraction > 0.0 && requested > 1 &&
      is_hestenes_family(options.method)) {
    for (std::size_t i = 0; i < batch.size(); ++i)
      if (costs[i] >= options.batch_split_min_fraction * total_cost)
        max_helpers[i] = requested - 1;
  }

  const auto bins = arch::shard_by_cost(costs, workers);

  const double batch_t0_us = trace != nullptr ? trace->now_us() : 0.0;
  std::uint32_t batch_tid = 0;
  if (trace != nullptr)
    batch_tid = trace->register_thread("svd_batch coordinator");
  // Timelines are per pool worker (exactly `workers` of them), written by
  // each worker thread into its own slot from the start hook.
  std::vector<std::uint32_t> worker_tids(workers, 0);

  WorkStealingOptions pool_opts;
  pool_opts.workers = workers;
  pool_opts.total_width = requested;
  pool_opts.max_helpers = max_helpers;
  if (trace != nullptr)
    pool_opts.worker_start = [&](std::size_t w) {
      worker_tids[w] =
          trace->register_thread("svd_batch worker " + std::to_string(w));
    };

  // Per-item exception slots: single writer each, scanned in index order
  // after the join so the lowest-index failure wins deterministically.
  std::vector<std::exception_ptr> item_errors(batch.size());

  const auto run_item = [&](const PoolTaskInfo& info) {
    const Matrix& a = batch[info.task];
    obs::Span item_span;
    if (trace != nullptr) {
      trace->emit_counter(worker_tids[info.worker], "batch",
                          "batch.queue.occupancy", trace->now_us(),
                          static_cast<double>(info.queued));
      item_span = obs::Span(trace, worker_tids[info.worker], "batch", "item",
                            obs::ArgsBuilder()
                                .add("index", info.task)
                                .add("rows", a.rows())
                                .add("cols", a.cols())
                                .add("stolen", info.stolen)
                                .add("helpers", info.helpers)
                                .str());
    }
    try {
      SvdOptions item_opts = per_item;
      // Each pool worker owns a warm arena; the item inherits it so a warm
      // wave's engine runs are allocation-free (workspace_reuse_total).
      item_opts.workspace = worker_ws_[info.worker].get();
      if (info.helpers > 0) {
        item_opts.method = split_counterpart(options.method);
        item_opts.threads = 1 + info.helpers;
      } else {
        item_opts.threads = 1;
      }
      results[info.task] = svd(a, item_opts);
    } catch (const std::exception& e) {
      item_errors[info.task] = std::make_exception_ptr(
          Error("svd_batch: item " + std::to_string(info.task) + " (" +
                std::to_string(a.rows()) + "x" + std::to_string(a.cols()) +
                "): " + e.what()));
    } catch (...) {
      item_errors[info.task] = std::current_exception();
    }
    if (watchdog != nullptr) watchdog->check_deadline();
  };

  const PoolStats pool = ensure_pool().run(costs, bins, pool_opts, run_item);

  std::size_t failed = 0;
  for (const auto& e : item_errors)
    if (e) ++failed;

  if (trace != nullptr)
    trace->emit_complete(batch_tid, "batch", "svd_batch", batch_t0_us,
                         trace->now_us() - batch_t0_us,
                         obs::ArgsBuilder()
                             .add("items", batch.size())
                             .add("workers", workers)
                             .add("requested_workers", requested)
                             .add("steals", pool.steals)
                             .add("nested_splits", pool.nested_runs)
                             .str());
  if (metrics != nullptr) {
    metrics->counter_add("batch.items", "matrices", batch.size());
    metrics->counter_add("batch.items_ok", "matrices", batch.size() - failed);
    metrics->counter_add("batch.items_failed", "matrices", failed);
    // batch.workers reports the pool workers actually participating — the
    // same number as the "svd_batch worker N" timelines — never the
    // pre-clamp request, so hjsvd_report per-worker tables match reality.
    metrics->gauge_set("batch.workers", "threads",
                       static_cast<double>(workers));
    metrics->gauge_set("batch.workers.requested", "threads",
                       static_cast<double>(requested));
    metrics->gauge_set("batch.wall_s", "s", pool.wall_s);
    metrics->counter_add("batch.steals", "tasks", pool.steals);
    metrics->counter_add("batch.nested.splits", "matrices", pool.nested_runs);
    metrics->counter_add("batch.nested.helpers", "threads",
                         pool.helpers_granted);
    for (double c : costs) metrics->hist_record("batch.item_cost", "flops", c);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::string prefix = "batch.worker." + std::to_string(w);
      metrics->gauge_set(prefix + ".busy_s", "s", pool.busy_s[w]);
      metrics->gauge_set(prefix + ".idle_s", "s", pool.idle_s[w]);
    }
    for (std::size_t k = 0; k < pool.occupancy.size(); ++k)
      metrics->series_append("batch.queue.occupancy", "tasks", k,
                             static_cast<double>(pool.occupancy[k]));
  }
  if (stats != nullptr) {
    stats->items = batch.size();
    stats->workers = pool.workers;
    stats->requested_workers = requested;
    stats->steals = pool.steals;
    stats->nested_splits = pool.nested_runs;
    stats->helpers_granted = pool.helpers_granted;
    stats->items_ok = batch.size() - failed;
    stats->items_failed = failed;
    stats->wall_s = pool.wall_s;
    stats->worker_busy_s = pool.busy_s;
    stats->worker_idle_s = pool.idle_s;
  }
  if (item_errors_out != nullptr) {
    // Serving mode: hand every per-item failure back (index-aligned) and
    // keep the successful results — a poisoned request must not take down
    // the rest of the wave.
    *item_errors_out = std::move(item_errors);
    return results;
  }
  for (const auto& e : item_errors)
    if (e) std::rethrow_exception(e);
  return results;
}

}  // namespace hjsvd

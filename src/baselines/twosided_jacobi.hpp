// Classic two-sided Jacobi SVD (Kogbetliantz), the algorithm behind the
// Brent-Luk systolic arrays the paper contrasts with (Section II.B, refs
// [9], [19]-[21]).  It annihilates each off-diagonal element of a *square*
// matrix with a left and a right plane rotation (eqs. (2)-(5)); the square
// restriction is exactly the limitation the Hestenes-Jacobi method removes.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "svd/ordering.hpp"

namespace hjsvd {

struct TwoSidedConfig {
  std::size_t max_sweeps = 10;
  /// Stop when max |off-diagonal| / max |diagonal| drops below this.
  double tolerance = 1e-12;
  Ordering ordering = Ordering::kRoundRobin;
  bool compute_u = false;
  bool compute_v = false;
};

/// Two-sided Jacobi SVD of a square matrix.  Throws for non-square input
/// (the documented restriction of the classic approach).
SvdResult twosided_jacobi_svd(const Matrix& a, const TwoSidedConfig& cfg = {});

/// The 2x2 rotation-angle solution of eq. (5): given the submatrix
/// [[app, apq], [aqp, aqq]], returns the left angle alpha and right angle
/// beta such that R(-alpha) * M * R(beta) is diagonal, where
/// R(theta) = [[cos, sin], [-sin, cos]].
struct TwoSidedAngles {
  double alpha = 0.0;
  double beta = 0.0;
};
TwoSidedAngles solve_two_sided_angles(double app, double apq, double aqp,
                                      double aqq);

}  // namespace hjsvd

#include "baselines/parallel_hestenes.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "linalg/kernels.hpp"
#include "svd/hestenes_impl.hpp"  // detail::rotate_columns, detail::make_record

namespace hjsvd {

SvdResult parallel_hestenes_svd(const Matrix& a, const HestenesConfig& cfg,
                                HestenesStats* stats) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.max_sweeps > 0, "need at least one sweep");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  const fp::NativeOps ops;

  Matrix r = a;
  const bool need_v = cfg.compute_v;
  Matrix v;
  if (need_v) v = Matrix::identity(n);

  const auto rounds = round_robin_rounds(n);
  SvdResult result;
  if (stats != nullptr) *stats = HestenesStats{};

  std::size_t sweeps_done = 0;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    std::atomic<std::uint64_t> rotations{0}, skipped{0};
    for (const auto& round : rounds) {
      // All pairs in a round touch disjoint columns: embarrassingly
      // parallel, and bit-identical to sequential execution.
      const auto count = static_cast<std::ptrdiff_t>(round.size());
#pragma omp parallel for schedule(dynamic, 1)
      for (std::ptrdiff_t p = 0; p < count; ++p) {
        const auto [i, j] = round[static_cast<std::size_t>(p)];
        const double norm_ii = dot(r.col(i), r.col(i));
        const double norm_jj = dot(r.col(j), r.col(j));
        const double cov = dot(r.col(i), r.col(j));
        if (detail::below_threshold(cov, norm_ii, norm_jj,
                                    cfg.rotation_threshold)) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const RotationParams rp =
            compute_rotation(cfg.formula, norm_jj, norm_ii, cov, ops);
        if (!rp.rotate) {
          skipped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        detail::rotate_columns(r, i, j, rp.cos, rp.sin, ops);
        if (need_v) detail::rotate_columns(v, i, j, rp.cos, rp.sin, ops);
        rotations.fetch_add(1, std::memory_order_relaxed);
      }
      // Implicit barrier at the end of the parallel region = the GPU
      // round synchronization.
    }
    ++sweeps_done;
    Matrix d;
    const bool need_metrics =
        (stats != nullptr && cfg.track_convergence) || cfg.tolerance > 0.0;
    if (need_metrics) d = gram_upper_ops(r, ops);
    if (stats != nullptr) {
      stats->total_rotations += rotations.load();
      stats->total_skipped += skipped.load();
      if (cfg.track_convergence)
        stats->sweeps.push_back(
            detail::make_record(d, rotations.load(), skipped.load()));
    }
    if (cfg.tolerance > 0.0 && max_relative_offdiag(d) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (cfg.tolerance == 0.0) {
    result.converged =
        max_relative_offdiag(gram_upper_ops(r, ops)) < 1e-10;
  }

  const std::size_t k = std::min(m, n);
  std::vector<double> norms(n);
  for (std::size_t c = 0; c < n; ++c) {
    const double sq = squared_norm(r.col(c));
    norms[c] = sq > 0.0 ? std::sqrt(sq) : 0.0;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });
  result.singular_values.resize(k);
  for (std::size_t t = 0; t < k; ++t)
    result.singular_values[t] = norms[order[t]];

  const double sigma_max =
      result.singular_values.empty() ? 0.0 : result.singular_values[0];
  const double cutoff = sigma_max * static_cast<double>(std::max(m, n)) * 1e-15;
  if (cfg.compute_u) {
    result.u = Matrix(m, k);
    for (std::size_t t = 0; t < k; ++t) {
      const double sv = norms[order[t]];
      if (sv <= cutoff) continue;
      const auto bt = r.col(order[t]);
      auto ut = result.u.col(t);
      for (std::size_t row = 0; row < m; ++row) ut[row] = bt[row] / sv;
    }
  }
  if (need_v) {
    Matrix v_sorted(n, k);
    for (std::size_t t = 0; t < k; ++t) {
      const auto src = v.col(order[t]);
      auto dst = v_sorted.col(t);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    result.v = std::move(v_sorted);
  }
  return result;
}

}  // namespace hjsvd

#include "baselines/parallel_hestenes.hpp"

#include "svd/parallel_sweep.hpp"

namespace hjsvd {

SvdResult parallel_hestenes_svd(const Matrix& a, const HestenesConfig& cfg,
                                HestenesStats* stats) {
  // The bulk-synchronous GPU-like execution is exactly the pair-parallel
  // plain path of the sweep engine at the runtime's default thread count.
  return parallel_plain_hestenes_svd(a, cfg, ParallelSweepConfig{}, stats);
}

}  // namespace hjsvd

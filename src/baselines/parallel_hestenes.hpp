// Group-parallel one-sided Jacobi ("GPU-like" baseline).
//
// GPUs execute the Hestenes-Jacobi method as bulk-synchronous rounds: all
// disjoint pairs of a round-robin round are orthogonalized concurrently,
// with a barrier between rounds (the "iterative thread synchronizations"
// the paper blames for the GPU implementations' performance, Section III).
// Because the pairs within a round touch disjoint columns, the parallel
// execution is bit-identical to the sequential round-robin plain Hestenes —
// a property the tests assert.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"
#include "svd/hestenes.hpp"

namespace hjsvd {

/// OpenMP bulk-synchronous plain Hestenes-Jacobi.  Uses round-robin rounds
/// regardless of cfg.ordering; other HestenesConfig fields are honored.
SvdResult parallel_hestenes_svd(const Matrix& a,
                                const HestenesConfig& cfg = {},
                                HestenesStats* stats = nullptr);

}  // namespace hjsvd

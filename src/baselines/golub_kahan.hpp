// Golub-Kahan-Reinsch SVD: Householder bidiagonalization followed by
// implicit-shift QR iteration on the bidiagonal.
//
// This is the algorithm behind the software baselines the paper compares
// against — MATLAB's svd and Intel MKL's dgesvd both reduce to bidiagonal
// form with Householder reflectors and then iterate QR (Section III; refs
// [6], [16], [17]).  We use it as (a) an independent correctness oracle for
// the Jacobi methods and (b) the "optimized software" timing baseline for
// Figs. 7-9.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"

namespace hjsvd {

struct GolubKahanConfig {
  bool compute_u = false;  // thin U (m x min(m,n))
  bool compute_v = false;  // thin V (n x min(m,n))
  /// Max QR iterations per singular value before declaring failure.
  std::size_t max_iterations = 75;
};

/// Full Golub-Kahan-Reinsch SVD of an arbitrary m x n matrix.  Singular
/// values are returned in descending order; U/V (when requested) follow the
/// same ordering and satisfy A ~= U diag(sv) V^T.
SvdResult golub_kahan_svd(const Matrix& a, const GolubKahanConfig& cfg = {});

/// Householder bidiagonalization only (exposed for testing): returns the
/// diagonal d (length n) and superdiagonal e (length n, e[0] unused) of the
/// bidiagonal form of an m x n matrix with m >= n.  The singular values of
/// (d, e) equal those of A.
void bidiagonalize(const Matrix& a, std::vector<double>& d,
                   std::vector<double>& e);

}  // namespace hjsvd

#include "baselines/literature.hpp"

namespace hjsvd::literature {

const std::vector<TableOneEntry>& paper_table1() {
  static const std::vector<TableOneEntry> data = {
      // cols = 128 (first index), rows = 128..1024 (second index)
      {128, 128, 4.39e-3}, {128, 256, 6.30e-3}, {128, 512, 1.01e-2},
      {128, 1024, 1.79e-2},
      {256, 128, 2.52e-2}, {256, 256, 3.30e-2}, {256, 512, 4.84e-2},
      {256, 1024, 7.94e-2},
      {512, 128, 1.70e-1}, {512, 256, 2.01e-1}, {512, 512, 2.63e-1},
      {512, 1024, 3.87e-1},
      {1024, 128, 1.23},   {1024, 256, 1.35},   {1024, 512, 1.61},
      {1024, 1024, 2.01},
  };
  return data;
}

std::optional<double> paper_table1_seconds(std::size_t cols,
                                           std::size_t rows) {
  for (const auto& e : paper_table1())
    if (e.cols == cols && e.rows == rows) return e.seconds;
  return std::nullopt;
}

const std::vector<PriorWork>& gpu_hestenes_prior() {
  static const std::vector<PriorWork> data = {
      {"GPU Hestenes-Jacobi [12]", 128, 128, 106.90e-3},
      {"GPU Hestenes-Jacobi [12]", 256, 256, 1022.92e-3},
  };
  return data;
}

const std::vector<PriorWork>& fpga_fixed_point_prior() {
  static const std::vector<PriorWork> data = {
      {"Fixed-point FPGA Hestenes [11]", 32, 127, 24.3143e-3},
  };
  return data;
}

}  // namespace hjsvd::literature

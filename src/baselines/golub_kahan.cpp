#include "baselines/golub_kahan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

/// Fortran SIGN(a, b): |a| with the sign of b.
double sign_of(double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); }

/// Golub-Reinsch SVD core: decomposes the m x n matrix held in `a` (m >= n
/// not required, but callers transpose to keep m >= n for efficiency).
/// On exit `w` holds the n singular values (unsorted, non-negative), `a` is
/// overwritten with U (m x n, only when want_u) and `v` with V (n x n, only
/// when want_v).  Returns false if QR iteration failed to converge.
bool golub_reinsch(Matrix& a, std::vector<double>& w, Matrix& v, bool want_u,
                   bool want_v, std::size_t max_its) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  w.assign(n, 0.0);
  if (want_v) v = Matrix(n, n);
  std::vector<double> rv1(n, 0.0);

  // --- Householder bidiagonalization -------------------------------------
  double g = 0.0, scale = 0.0, anorm = 0.0;
  std::size_t l = 0;
  for (std::size_t i = 0; i < n; ++i) {
    l = i + 1;
    rv1[i] = scale * g;
    g = scale = 0.0;
    double s = 0.0;
    if (i < m) {
      for (std::size_t k = i; k < m; ++k) scale += std::abs(a(k, i));
      if (scale != 0.0) {
        for (std::size_t k = i; k < m; ++k) {
          a(k, i) /= scale;
          s += a(k, i) * a(k, i);
        }
        double f = a(i, i);
        g = -sign_of(std::sqrt(s), f);
        const double h = f * g - s;
        a(i, i) = f - g;
        for (std::size_t j = l; j < n; ++j) {
          double sum = 0.0;
          for (std::size_t k = i; k < m; ++k) sum += a(k, i) * a(k, j);
          f = sum / h;
          for (std::size_t k = i; k < m; ++k) a(k, j) += f * a(k, i);
        }
        for (std::size_t k = i; k < m; ++k) a(k, i) *= scale;
      }
    }
    w[i] = scale * g;
    g = scale = 0.0;
    s = 0.0;
    if (i < m && i + 1 != n) {
      for (std::size_t k = l; k < n; ++k) scale += std::abs(a(i, k));
      if (scale != 0.0) {
        for (std::size_t k = l; k < n; ++k) {
          a(i, k) /= scale;
          s += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        g = -sign_of(std::sqrt(s), f);
        const double h = f * g - s;
        a(i, l) = f - g;
        for (std::size_t k = l; k < n; ++k) rv1[k] = a(i, k) / h;
        for (std::size_t j = l; j < m; ++j) {
          double sum = 0.0;
          for (std::size_t k = l; k < n; ++k) sum += a(j, k) * a(i, k);
          for (std::size_t k = l; k < n; ++k) a(j, k) += sum * rv1[k];
        }
        for (std::size_t k = l; k < n; ++k) a(i, k) *= scale;
      }
    }
    anorm = std::max(anorm, std::abs(w[i]) + std::abs(rv1[i]));
  }

  // --- Accumulate right-hand transformations -----------------------------
  if (want_v) {
    for (std::size_t ii = n; ii-- > 0;) {
      const std::size_t i = ii;
      if (i + 1 < n) {
        if (g != 0.0) {
          // Double division avoids possible underflow (classic trick).
          for (std::size_t j = l; j < n; ++j)
            v(j, i) = (a(i, j) / a(i, l)) / g;
          for (std::size_t j = l; j < n; ++j) {
            double sum = 0.0;
            for (std::size_t k = l; k < n; ++k) sum += a(i, k) * v(k, j);
            for (std::size_t k = l; k < n; ++k) v(k, j) += sum * v(k, i);
          }
        }
        for (std::size_t j = l; j < n; ++j) v(i, j) = v(j, i) = 0.0;
      }
      v(i, i) = 1.0;
      g = rv1[i];
      l = i;
    }
  }

  // --- Accumulate left-hand transformations ------------------------------
  if (want_u) {
    for (std::size_t ii = std::min(m, n); ii-- > 0;) {
      const std::size_t i = ii;
      l = i + 1;
      g = w[i];
      for (std::size_t j = l; j < n; ++j) a(i, j) = 0.0;
      if (g != 0.0) {
        g = 1.0 / g;
        for (std::size_t j = l; j < n; ++j) {
          double sum = 0.0;
          for (std::size_t k = l; k < m; ++k) sum += a(k, i) * a(k, j);
          const double f = (sum / a(i, i)) * g;
          for (std::size_t k = i; k < m; ++k) a(k, j) += f * a(k, i);
        }
        for (std::size_t j = i; j < m; ++j) a(j, i) *= g;
      } else {
        for (std::size_t j = i; j < m; ++j) a(j, i) = 0.0;
      }
      a(i, i) += 1.0;
    }
  }

  // --- QR iteration on the bidiagonal form -------------------------------
  for (std::size_t kk = n; kk-- > 0;) {
    const std::size_t k = kk;
    for (std::size_t its = 0;; ++its) {
      bool flag = true;
      std::size_t ll = 0;
      std::size_t nm = 0;
      for (std::size_t lv = k + 1; lv-- > 0;) {
        ll = lv;
        nm = ll == 0 ? 0 : ll - 1;
        if (std::abs(rv1[ll]) + anorm == anorm) {
          flag = false;
          break;
        }
        if (ll != 0 && std::abs(w[nm]) + anorm == anorm) break;
      }
      if (flag) {
        // Cancellation of rv1[ll] when w[ll-1] is negligible.
        double c = 0.0, s = 1.0;
        for (std::size_t i = ll; i <= k; ++i) {
          const double f = s * rv1[i];
          rv1[i] = c * rv1[i];
          if (std::abs(f) + anorm == anorm) break;
          g = w[i];
          double h = std::hypot(f, g);
          w[i] = h;
          h = 1.0 / h;
          c = g * h;
          s = -f * h;
          if (want_u) {
            for (std::size_t j = 0; j < m; ++j) {
              const double y = a(j, nm);
              const double z = a(j, i);
              a(j, nm) = y * c + z * s;
              a(j, i) = z * c - y * s;
            }
          }
        }
      }
      double z = w[k];
      if (ll == k) {  // convergence
        if (z < 0.0) {
          w[k] = -z;
          if (want_v)
            for (std::size_t j = 0; j < n; ++j) v(j, k) = -v(j, k);
        }
        break;
      }
      if (its + 1 >= max_its) return false;
      // Wilkinson-style shift from the trailing 2x2 of B^T B.
      double x = w[ll];
      nm = k - 1;
      double y = w[nm];
      g = rv1[nm];
      double h = rv1[k];
      double f = ((y - z) * (y + z) + (g - h) * (g + h)) / (2.0 * h * y);
      g = std::hypot(f, 1.0);
      f = ((x - z) * (x + z) + h * ((y / (f + sign_of(g, f))) - h)) / x;
      // Bulge chase.
      double c = 1.0, s = 1.0;
      for (std::size_t j = ll; j <= nm; ++j) {
        const std::size_t i = j + 1;
        g = rv1[i];
        y = w[i];
        h = s * g;
        g = c * g;
        z = std::hypot(f, h);
        rv1[j] = z;
        c = f / z;
        s = h / z;
        f = x * c + g * s;
        g = g * c - x * s;
        h = y * s;
        y *= c;
        if (want_v) {
          for (std::size_t jj = 0; jj < n; ++jj) {
            const double xv = v(jj, j);
            const double zv = v(jj, i);
            v(jj, j) = xv * c + zv * s;
            v(jj, i) = zv * c - xv * s;
          }
        }
        z = std::hypot(f, h);
        w[j] = z;
        if (z != 0.0) {
          z = 1.0 / z;
          c = f * z;
          s = h * z;
        }
        f = c * g + s * y;
        x = c * y - s * g;
        if (want_u) {
          for (std::size_t jj = 0; jj < m; ++jj) {
            const double yu = a(jj, j);
            const double zu = a(jj, i);
            a(jj, j) = yu * c + zu * s;
            a(jj, i) = zu * c - yu * s;
          }
        }
      }
      rv1[ll] = 0.0;
      rv1[k] = f;
      w[k] = x;
    }
  }
  return true;
}

}  // namespace

void bidiagonalize(const Matrix& a, std::vector<double>& d,
                   std::vector<double>& e) {
  HJSVD_ENSURE(a.rows() >= a.cols(), "bidiagonalize requires m >= n");
  Matrix work = a;
  const std::size_t n = work.cols();
  const std::size_t m = work.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  double g = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t l = i + 1;
    e[i] = scale * g;
    g = scale = 0.0;
    double s = 0.0;
    for (std::size_t k = i; k < m; ++k) scale += std::abs(work(k, i));
    if (scale != 0.0) {
      for (std::size_t k = i; k < m; ++k) {
        work(k, i) /= scale;
        s += work(k, i) * work(k, i);
      }
      double f = work(i, i);
      g = -sign_of(std::sqrt(s), f);
      const double h = f * g - s;
      work(i, i) = f - g;
      for (std::size_t j = l; j < n; ++j) {
        double sum = 0.0;
        for (std::size_t k = i; k < m; ++k) sum += work(k, i) * work(k, j);
        f = sum / h;
        for (std::size_t k = i; k < m; ++k) work(k, j) += f * work(k, i);
      }
    }
    d[i] = scale * g;
    g = scale = 0.0;
    s = 0.0;
    if (i + 1 != n) {
      for (std::size_t k = l; k < n; ++k) scale += std::abs(work(i, k));
      if (scale != 0.0) {
        std::vector<double> tmp(n, 0.0);
        for (std::size_t k = l; k < n; ++k) {
          work(i, k) /= scale;
          s += work(i, k) * work(i, k);
        }
        double f = work(i, l);
        g = -sign_of(std::sqrt(s), f);
        const double h = f * g - s;
        work(i, l) = f - g;
        for (std::size_t k = l; k < n; ++k) tmp[k] = work(i, k) / h;
        for (std::size_t j = l; j < m; ++j) {
          double sum = 0.0;
          for (std::size_t k = l; k < n; ++k) sum += work(j, k) * work(i, k);
          for (std::size_t k = l; k < n; ++k) work(j, k) += sum * tmp[k];
        }
        for (std::size_t k = l; k < n; ++k) work(i, k) *= scale;
      }
    }
  }
}

SvdResult golub_kahan_svd(const Matrix& a, const GolubKahanConfig& cfg) {
  HJSVD_ENSURE(a.rows() > 0 && a.cols() > 0, "matrix must be non-empty");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");
  const bool transpose = a.rows() < a.cols();
  Matrix work = transpose ? a.transposed() : a;
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();
  const bool want_u = transpose ? cfg.compute_v : cfg.compute_u;
  const bool want_v = transpose ? cfg.compute_u : cfg.compute_v;

  std::vector<double> w;
  Matrix v;
  const bool ok =
      golub_reinsch(work, w, v, want_u, want_v, cfg.max_iterations);
  HJSVD_ENSURE(ok, "Golub-Kahan QR iteration failed to converge");

  // Sort descending, permuting any accumulated vectors along.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return w[x] > w[y]; });

  SvdResult result;
  result.converged = true;
  const std::size_t k = std::min(m, n);
  result.singular_values.resize(k);
  for (std::size_t t = 0; t < k; ++t) result.singular_values[t] = w[order[t]];

  auto gather_cols = [&](const Matrix& src, std::size_t rows) {
    Matrix out(rows, k);
    for (std::size_t t = 0; t < k; ++t) {
      const auto s = src.col(order[t]);
      auto dcol = out.col(t);
      std::copy(s.begin(), s.end(), dcol.begin());
    }
    return out;
  };
  Matrix u_sorted, v_sorted;
  if (want_u) u_sorted = gather_cols(work, m);
  if (want_v) v_sorted = gather_cols(v, n);
  if (transpose) {
    if (cfg.compute_u) result.u = std::move(v_sorted);
    if (cfg.compute_v) result.v = std::move(u_sorted);
  } else {
    if (cfg.compute_u) result.u = std::move(u_sorted);
    if (cfg.compute_v) result.v = std::move(v_sorted);
  }
  return result;
}

}  // namespace hjsvd

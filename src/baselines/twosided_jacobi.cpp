#include "baselines/twosided_jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/kernels.hpp"

namespace hjsvd {
namespace {

/// Applies R(-alpha) on the left to rows p, q of A.
void rotate_rows(Matrix& a, std::size_t p, std::size_t q, double ca,
                 double sa) {
  for (std::size_t j = 0; j < a.cols(); ++j) {
    const double x = a(p, j);
    const double y = a(q, j);
    a(p, j) = ca * x - sa * y;
    a(q, j) = sa * x + ca * y;
  }
}

/// Applies R(beta) on the right to columns p, q of A.
void rotate_cols(Matrix& a, std::size_t p, std::size_t q, double cb,
                 double sb) {
  auto cp = a.col(p);
  auto cq = a.col(q);
  for (std::size_t i = 0; i < cp.size(); ++i) {
    const double x = cp[i];
    const double y = cq[i];
    cp[i] = cb * x - sb * y;
    cq[i] = sb * x + cb * y;
  }
}

double offdiag_ratio(const Matrix& a) {
  double max_diag = 0.0, max_off = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double v = std::abs(a(i, j));
      if (i == j)
        max_diag = std::max(max_diag, v);
      else
        max_off = std::max(max_off, v);
    }
  if (max_diag == 0.0) return max_off == 0.0 ? 0.0 : INFINITY;
  return max_off / max_diag;
}

}  // namespace

TwoSidedAngles solve_two_sided_angles(double app, double apq, double aqp,
                                      double aqq) {
  // eq. (5): beta + alpha = atan((aqp + apq) / (aqq - app)),
  //          beta - alpha = atan((aqp - apq) / (aqq + app)).
  const double sum = std::atan2(aqp + apq, aqq - app);
  const double diff = std::atan2(aqp - apq, aqq + app);
  TwoSidedAngles ang;
  ang.beta = 0.5 * (sum + diff);
  ang.alpha = 0.5 * (sum - diff);
  return ang;
}

SvdResult twosided_jacobi_svd(const Matrix& a, const TwoSidedConfig& cfg) {
  HJSVD_ENSURE(a.rows() == a.cols(),
               "two-sided Jacobi handles square matrices only (the "
               "restriction the Hestenes-Jacobi method lifts)");
  const std::size_t n = a.rows();
  HJSVD_ENSURE(n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(all_finite(a), "input matrix must be finite (no NaN/inf)");

  Matrix w = a;
  Matrix u, v;
  if (cfg.compute_u) u = Matrix::identity(n);
  if (cfg.compute_v) v = Matrix::identity(n);

  const auto pairs = sweep_pairs(cfg.ordering, n);
  SvdResult result;
  std::size_t sweeps_done = 0;
  for (std::size_t sweep = 0; sweep < cfg.max_sweeps; ++sweep) {
    for (const auto& [p, q] : pairs) {
      const double app = w(p, p), apq = w(p, q);
      const double aqp = w(q, p), aqq = w(q, q);
      if (apq == 0.0 && aqp == 0.0) continue;
      const auto ang = solve_two_sided_angles(app, apq, aqp, aqq);
      const double ca = std::cos(ang.alpha), sa = std::sin(ang.alpha);
      const double cb = std::cos(ang.beta), sb = std::sin(ang.beta);
      rotate_rows(w, p, q, ca, sa);
      rotate_cols(w, p, q, cb, sb);
      // U accumulates the left rotations (transposed), V the right ones.
      if (cfg.compute_u) rotate_cols(u, p, q, ca, sa);
      if (cfg.compute_v) rotate_cols(v, p, q, cb, sb);
    }
    ++sweeps_done;
    if (offdiag_ratio(w) < cfg.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.sweeps = sweeps_done;
  if (!result.converged) result.converged = offdiag_ratio(w) < 1e-10;

  // Diagonal entries may be negative; fold the sign into U.
  std::vector<double> sv(n);
  for (std::size_t i = 0; i < n; ++i) {
    sv[i] = std::abs(w(i, i));
    if (w(i, i) < 0.0 && cfg.compute_u) {
      auto ui = u.col(i);
      for (double& x : ui) x = -x;
    }
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) { return sv[x] > sv[y]; });
  result.singular_values.resize(n);
  for (std::size_t t = 0; t < n; ++t) result.singular_values[t] = sv[order[t]];
  auto gather = [&](const Matrix& src) {
    Matrix out(n, n);
    for (std::size_t t = 0; t < n; ++t) {
      const auto s = src.col(order[t]);
      auto dcol = out.col(t);
      std::copy(s.begin(), s.end(), dcol.begin());
    }
    return out;
  };
  if (cfg.compute_u) result.u = gather(u);
  if (cfg.compute_v) result.v = gather(v);
  return result;
}

}  // namespace hjsvd

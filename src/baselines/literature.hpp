// Reference numbers quoted from the paper and its cited prior work, used by
// the benchmark harnesses to print "paper" columns next to our measured and
// modeled values.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace hjsvd::literature {

/// The paper's Table I: execution time (seconds) of the FPGA design.
///
/// ORIENTATION NOTE (see DESIGN.md §4): the printed header says "m \ n",
/// but the paper's own analysis ("execution time grows significantly as the
/// number of matrix *columns* increases ... the number of *rows* ... has
/// smaller impact") matches the data only if the first index — down the
/// table, where time grows ~8x per doubling — is the column count and the
/// second index the row count.  We expose it under that reading.
struct TableOneEntry {
  std::size_t cols;    // n (first index; dominant, ~cubic)
  std::size_t rows;    // m (second index; mild, ~linear)
  double seconds;
};
const std::vector<TableOneEntry>& paper_table1();

/// Looks up Table I by (cols, rows); empty when the paper has no such cell.
std::optional<double> paper_table1_seconds(std::size_t cols, std::size_t rows);

/// Paper Table II: resource utilization of the design on the XC5VLX330.
struct TableTwo {
  double lut_pct = 89.0;
  double bram_pct = 91.0;
  double dsp_pct = 53.0;
};
constexpr TableTwo paper_table2() { return {}; }

/// Speedup range the paper reports vs. its MATLAB baseline for column sizes
/// 128-256 and row sizes 128-2048 (abstract and Section VI.B).
struct SpeedupRange {
  double min_speedup = 3.8;
  double max_speedup = 43.6;
  std::size_t col_min = 128, col_max = 256;
  std::size_t row_min = 128, row_max = 2048;
};
constexpr SpeedupRange paper_speedup_range() { return {}; }

/// Prior-work numbers the paper quotes in Section VI.B.
struct PriorWork {
  const char* label;
  std::size_t rows;
  std::size_t cols;
  double seconds;
};
/// GPU-based Hestenes-Jacobi of [12] (Kotas & Barhen as cited): no speedup
/// over software; 106.90 ms for 128x128 and 1022.92 ms for 256x256.
const std::vector<PriorWork>& gpu_hestenes_prior();
/// Fixed-point FPGA design of [11] (Ledesma-Carrillo et al. as cited):
/// limited to 32x128; 24.3143 ms for its largest 32x127 case.
const std::vector<PriorWork>& fpga_fixed_point_prior();

}  // namespace hjsvd::literature

#include "arch/resource_model.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"

namespace hjsvd::arch {
namespace {

/// BRAM36 blocks needed to hold `words` 64-bit words in 512x72 mode.
std::uint64_t bram_for_words(std::uint64_t words) {
  return (words + 511) / 512;
}

}  // namespace

ResourceReport estimate_resources(const AcceleratorConfig& cfg,
                                  const DeviceCapacity& device,
                                  const CoreCatalog& catalog,
                                  std::uint64_t max_rows,
                                  std::uint64_t max_cols_onchip) {
  HJSVD_ENSURE(max_cols_onchip >= 2, "need at least two on-chip columns");
  ResourceReport r;

  auto add = [&](const CoreCost& cost, std::uint64_t count, std::uint64_t& lut_bucket) {
    r.luts += cost.luts * count;
    r.bram36 += cost.bram36 * count;
    r.dsp48 += cost.dsp48 * count;
    lut_bucket += cost.luts * count;
  };

  // Hestenes preprocessor: layers x lanes multipliers, matching adder tree.
  const std::uint64_t pre_mults =
      static_cast<std::uint64_t>(cfg.preproc_layers) * cfg.preproc_lanes;
  add(catalog.fp_mul, pre_mults, r.luts_preprocessor);
  add(catalog.fp_add, pre_mults, r.luts_preprocessor);  // "16 adders"

  // Jacobi rotation component: 1 mul, 2 add, 1 div, 1 sqrt (Section VI.A).
  add(catalog.fp_mul, 1, r.luts_rotation);
  add(catalog.fp_add, 2, r.luts_rotation);
  add(catalog.fp_div, 1, r.luts_rotation);
  add(catalog.fp_sqrt, 1, r.luts_rotation);

  // Update operator: each kernel is 4 multipliers + adder + subtractor.
  add(catalog.fp_mul, 4ull * cfg.update_kernels, r.luts_update);
  add(catalog.fp_add, 2ull * cfg.update_kernels, r.luts_update);

  // FIFOs: two groups of eight 64-bit (I/O) + one group of eight 127-bit.
  add(catalog.fifo64, 16, r.luts_fifos);
  add(catalog.fifo127, 8, r.luts_fifos);

  // On-chip covariance banks: the upper triangle of D for up to
  // max_cols_onchip columns, banked across the update kernels (each bank is
  // an independently addressed simple dual-port RAM).
  const std::uint64_t cov_words = max_cols_onchip * (max_cols_onchip + 1) / 2;
  const std::uint64_t banks = cfg.total_kernels_late();
  const std::uint64_t words_per_bank = (cov_words + banks - 1) / banks;
  r.bram36 += banks * bram_for_words(words_per_bank);

  // Column stream double-buffers: one column pair per concurrent rotation,
  // double-buffered.
  const std::uint64_t col_words = 2ull * cfg.rotation_group_size * max_rows;
  r.bram36 += 2 * bram_for_words(col_words);

  // Rotation-angle caches (cos, sin, t per in-flight rotation group).
  r.bram36 += 3;

  // Convey personality framework.
  add(catalog.platform, 1, r.luts_platform);

  r.lut_pct = 100.0 * static_cast<double>(r.luts) / device.luts;
  r.bram_pct = 100.0 * static_cast<double>(r.bram36) / device.bram36;
  r.dsp_pct = 100.0 * static_cast<double>(r.dsp48) / device.dsp48;
  r.fits = r.luts <= device.luts && r.bram36 <= device.bram36 &&
           r.dsp48 <= device.dsp48;
  return r;
}

std::string format_resource_report(const ResourceReport& report,
                                   const DeviceCapacity& device) {
  AsciiTable t({"Resource", "Used", "Available", "Utilization"});
  t.set_caption(std::string("Resource consumption on ") + device.name +
                " (paper Table II: 89% LUT, 91% BRAM, 53% DSP)");
  t.add_row({"Slice LUT", std::to_string(report.luts),
             std::to_string(device.luts), format_fixed(report.lut_pct, 1) + "%"});
  t.add_row({"BRAM (36Kb)", std::to_string(report.bram36),
             std::to_string(device.bram36),
             format_fixed(report.bram_pct, 1) + "%"});
  t.add_row({"DSP48E", std::to_string(report.dsp48),
             std::to_string(device.dsp48),
             format_fixed(report.dsp_pct, 1) + "%"});
  std::ostringstream os;
  os << t.to_string();
  os << "Component LUT breakdown: preprocessor=" << report.luts_preprocessor
     << " rotation=" << report.luts_rotation
     << " update=" << report.luts_update << " fifos=" << report.luts_fifos
     << " platform=" << report.luts_platform << '\n';
  os << (report.fits ? "Design fits the device.\n"
                     : "WARNING: design exceeds device capacity!\n");
  return os.str();
}

}  // namespace hjsvd::arch

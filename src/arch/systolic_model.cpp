#include "arch/systolic_model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hjsvd::arch {

SystolicReport estimate_systolic(std::size_t n, const DeviceCapacity& device,
                                 const SystolicPeCost& pe, double clock_hz) {
  HJSVD_ENSURE(n >= 2, "systolic array needs at least a 2x2 matrix");
  SystolicReport r;
  const std::uint64_t side = (n + 1) / 2;
  r.pe_count = side * side;
  const std::uint64_t diagonal = side;
  const std::uint64_t interior = r.pe_count - diagonal;
  r.luts = interior * pe.luts_interior + diagonal * pe.luts_diagonal;
  r.dsp48 = interior * pe.dsp_interior + diagonal * pe.dsp_diagonal;
  r.lut_pct = 100.0 * static_cast<double>(r.luts) / device.luts;
  r.dsp_pct = 100.0 * static_cast<double>(r.dsp48) / device.dsp48;
  r.fits = r.luts <= device.luts && r.dsp48 <= device.dsp48;

  // Brent-Luk: a sweep completes in ~n systolic steps; O(log n) sweeps.
  // Each step's latency is the rotation datapath (~60 cycles for DP cores).
  const auto sweeps = static_cast<std::uint64_t>(
      std::ceil(std::log2(static_cast<double>(n))) + 4);
  constexpr std::uint64_t kStepLatency = 60;
  r.cycles = sweeps * static_cast<std::uint64_t>(n) * kStepLatency;
  r.seconds = static_cast<double>(r.cycles) / clock_hz;
  return r;
}

std::size_t max_systolic_n(const DeviceCapacity& device,
                           const SystolicPeCost& pe) {
  std::size_t best = 0;
  for (std::size_t n = 2; n <= 4096; n += 2) {
    if (estimate_systolic(n, device, pe).fits)
      best = n;
    else
      break;
  }
  return best;
}

}  // namespace hjsvd::arch

#include "arch/multi_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hjsvd::arch {

using hwsim::Cycle;

namespace {

Cycle ceil_div(std::uint64_t num, double rate) {
  HJSVD_ASSERT(rate > 0.0, "rate must be positive");
  return static_cast<Cycle>(std::ceil(static_cast<double>(num) / rate));
}

}  // namespace

MultiEngineTiming estimate_multi_engine(const MultiEngineConfig& cfg,
                                        std::size_t m, std::size_t n) {
  HJSVD_ENSURE(cfg.engines >= 1, "need at least one engine");
  const auto& eng = cfg.engine;
  MultiEngineTiming t;
  const auto mm = static_cast<std::uint64_t>(m);
  const auto nn = static_cast<std::uint64_t>(n);
  const std::uint32_t e = cfg.engines;

  // Preprocess: rows split across engines; each engine keeps the paper's
  // per-engine compute and input bandwidth.
  const std::uint64_t macs = mm * nn * (nn + 1) / 2;
  const Cycle compute =
      ceil_div(macs, static_cast<double>(eng.preproc_macs_per_cycle()) * e);
  const Cycle input = ceil_div(mm * nn, eng.input_words_per_cycle * e);
  t.preprocess = std::max(compute, input) +
                 eng.latencies.mul + eng.latencies.add * eng.preproc_layers;
  // Tree reduction of partial Grams: log2(E) rounds moving n(n+1)/2 words.
  if (e > 1) {
    const auto rounds = static_cast<std::uint64_t>(
        std::ceil(std::log2(static_cast<double>(e))));
    t.reduction =
        rounds * ceil_div(nn * (nn + 1) / 2, cfg.reduction_words_per_cycle);
  }

  // Sweeps: per rotation group, the update work is divided across engines;
  // the rotation cadence is serial.
  const std::uint64_t per_round = nn / 2;
  const std::uint64_t rounds = nn < 2 ? 0 : (nn % 2 == 0 ? nn - 1 : nn);
  const std::uint64_t cov_per_rot = nn >= 2 ? nn - 2 : 0;
  const std::uint64_t cov_words = nn * (nn + 1) / 2;
  const bool fits = cov_words <= eng.bram_covariance_words * e;  // D sliced

  Cycle sweep_total = 0;
  Cycle rotation_bound_total = 0;
  for (std::uint32_t sweep = 1; sweep <= eng.sweeps; ++sweep) {
    const bool first = sweep == 1;
    Cycle round_cycles = 0;
    Cycle round_rotation_bound = 0;
    std::uint64_t remaining = per_round;
    // All rounds have the same group structure; cost one and multiply.
    while (remaining > 0) {
      const std::uint64_t g =
          std::min<std::uint64_t>(remaining, eng.rotation_group_size);
      remaining -= g;
      Cycle update =
          ceil_div(g * cov_per_rot, eng.cov_pairs_per_cycle * e);
      if (first) update += ceil_div(g * mm, eng.col_pairs_per_cycle * e);
      Cycle io = 0;
      if (!fits && cov_per_rot > 0) {
        io = ceil_div(4 * g * cov_per_rot, eng.memory.words_per_cycle);
      }
      const Cycle bound =
          std::max({static_cast<Cycle>(eng.rotation_issue_cycles), update, io});
      if (update < bound && io < bound) round_rotation_bound += bound;
      round_cycles += bound;
    }
    // Broadcast of rotation parameters per group is folded into the cadence.
    sweep_total += round_cycles * rounds + eng.latencies.div +
                   eng.latencies.sqrt;
    rotation_bound_total += round_rotation_bound * rounds;
  }
  t.sweeps = sweep_total;
  t.rotation_bound_fraction =
      sweep_total > 0 ? static_cast<double>(rotation_bound_total) /
                            static_cast<double>(sweep_total)
                      : 0.0;

  t.finalize = nn + eng.latencies.sqrt;
  t.total = t.preprocess + t.reduction + t.sweeps + t.finalize;
  t.seconds = static_cast<double>(t.total) / eng.clock_hz;
  return t;
}

std::vector<std::vector<std::size_t>> shard_by_cost(
    const std::vector<double>& costs, std::size_t shards) {
  HJSVD_ENSURE(shards >= 1, "need at least one shard");
  for (double c : costs)
    HJSVD_ENSURE(c >= 0.0 && std::isfinite(c),
                 "work-item costs must be finite and non-negative");
  std::vector<std::size_t> order(costs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs[a] > costs[b];
  });
  std::vector<std::vector<std::size_t>> bins(shards);
  std::vector<double> load(shards, 0.0);
  for (std::size_t idx : order) {
    std::size_t target = 0;
    for (std::size_t s = 1; s < shards; ++s)
      if (load[s] < load[target]) target = s;
    bins[target].push_back(idx);
    load[target] += costs[idx];
  }
  return bins;
}

}  // namespace hjsvd::arch

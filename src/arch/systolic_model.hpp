// Resource/timing model of the classic two-sided Jacobi systolic array
// (Brent-Luk-Van Loan [9][19]) — the prior FPGA approach the paper's
// Section III contrasts with: "to fit the architecture on a single chip,
// the scalability is limited, as n^2 processing elements is needed", and
// the input is restricted to square matrices.
//
// The model quantifies both claims on the paper's own device: an
// (n/2) x (n/2) array of 2x2-rotation PEs exhausts the XC5VLX330 at tiny n,
// while the Hestenes-Jacobi architecture's resource usage is
// size-independent (bench_systolic_comparison).
#pragma once

#include <cstdint>

#include "arch/device.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::arch {

/// Per-PE cost of a Brent-Luk processing element: it holds a 2x2 block and
/// applies left/right rotations each step.  A floating-point PE needs ~8
/// multipliers' worth of datapath plus angle generation; the boundary
/// (diagonal) PEs also compute angles.  Costs are calibrated to DP
/// floating-point cores (the apples-to-apples comparison with the paper's
/// design); classic fixed-point arrays are cheaper per PE but share the
/// same quadratic scaling.
struct SystolicPeCost {
  std::uint32_t luts_interior = 7200;   // 4 mul-equivalents + 4 add + ctrl
  std::uint32_t dsp_interior = 8;       // 4 DP multipliers x 2 DSP
  std::uint32_t luts_diagonal = 13000;  // interior + angle solver
  std::uint32_t dsp_diagonal = 12;
  std::uint32_t bram_per_pe = 0;        // 2x2 blocks live in registers
};

struct SystolicReport {
  std::uint64_t pe_count = 0;           // (ceil(n/2))^2
  std::uint64_t luts = 0;
  std::uint64_t dsp48 = 0;
  double lut_pct = 0.0;
  double dsp_pct = 0.0;
  bool fits = false;
  /// Cycles for a full decomposition: O(n log n) with ~10 sweeps of n
  /// systolic steps (Brent & Luk's bound), each step dominated by the
  /// rotation datapath latency.
  hwsim::Cycle cycles = 0;
  double seconds = 0.0;
};

/// Resource/time estimate of an n x n two-sided Jacobi systolic array.
SystolicReport estimate_systolic(std::size_t n,
                                 const DeviceCapacity& device = {},
                                 const SystolicPeCost& pe = {},
                                 double clock_hz = 150e6);

/// Largest square dimension whose full array fits the device.
std::size_t max_systolic_n(const DeviceCapacity& device = {},
                           const SystolicPeCost& pe = {});

}  // namespace hjsvd::arch

// FPGA resource model: tallies LUT/BRAM/DSP usage of a configured
// Hestenes-Jacobi accelerator on a target device — the reproduction of the
// paper's Table II.
#pragma once

#include <string>

#include "arch/config.hpp"
#include "arch/device.hpp"

namespace hjsvd::arch {

/// Absolute resource usage plus utilization percentages.
struct ResourceReport {
  std::uint64_t luts = 0;
  std::uint64_t bram36 = 0;
  std::uint64_t dsp48 = 0;
  double lut_pct = 0.0;
  double bram_pct = 0.0;
  double dsp_pct = 0.0;
  bool fits = false;

  // Component-level breakdown (LUTs) for reporting.
  std::uint64_t luts_preprocessor = 0;
  std::uint64_t luts_rotation = 0;
  std::uint64_t luts_update = 0;
  std::uint64_t luts_fifos = 0;
  std::uint64_t luts_platform = 0;
};

/// Computes the resource usage of the architecture on the device.
/// `max_rows` sizes the column stream buffers; `max_cols_onchip` sizes the
/// on-chip covariance banks (256 in the paper's build).
ResourceReport estimate_resources(const AcceleratorConfig& cfg,
                                  const DeviceCapacity& device = {},
                                  const CoreCatalog& catalog = {},
                                  std::uint64_t max_rows = 2048,
                                  std::uint64_t max_cols_onchip = 256);

/// Renders the report as an ASCII table comparable to Table II.
std::string format_resource_report(const ResourceReport& report,
                                   const DeviceCapacity& device = {});

}  // namespace hjsvd::arch

#include "arch/update_array_sim.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "hwsim/fifo.hpp"

namespace hjsvd::arch {

using hwsim::Cycle;

UpdateArraySimResult simulate_update_array(
    const std::vector<UpdateGroupArrival>& groups, std::uint32_t kernels,
    std::uint32_t banks, std::uint32_t fifo_depth,
    const fp::CoreLatencies& latencies) {
  HJSVD_ENSURE(kernels >= 1 && banks >= 1 && fifo_depth >= 1,
               "need at least one kernel, bank and FIFO slot");
  UpdateArraySimResult result;
  if (groups.empty()) return result;

  // Arrival order must be non-decreasing in readiness (pipeline order).
  for (std::size_t g = 1; g < groups.size(); ++g)
    HJSVD_ENSURE(groups[g].params_ready >= groups[g - 1].params_ready,
                 "groups must arrive in order");

  // Kernel datapath latency: two multiplies in parallel feed the adder /
  // subtractor (Fig. 5) — results appear mul + add cycles after issue.
  const Cycle kernel_latency = latencies.mul + latencies.add;

  hwsim::Fifo<std::uint64_t> param_fifo(fifo_depth);  // pairs per group
  std::size_t next_group = 0;
  std::uint64_t current_remaining = 0;  // pairs left in the group being drained
  Cycle last_issue = 0;
  bool issued_any = false;
  Cycle first_issue = 0;

  Cycle now = groups.front().params_ready;
  const std::uint64_t total_pairs = [&] {
    std::uint64_t t = 0;
    for (const auto& g : groups) t += g.element_pairs;
    return t;
  }();

  std::uint64_t processed = 0;
  std::uint64_t bank_rr = 0;  // round-robin bank cursor
  while (processed < total_pairs) {
    // 1. Groups whose parameters are ready enter the FIFO (if space).
    while (next_group < groups.size() &&
           groups[next_group].params_ready <= now &&
           param_fifo.try_push(groups[next_group].element_pairs)) {
      ++next_group;
    }
    // 2. Head-of-line group feeds the kernel array.
    if (current_remaining == 0 && !param_fifo.empty()) {
      (void)param_fifo.try_pop(current_remaining);
    }
    // 3. Issue up to min(kernels, banks-without-conflict) pairs this cycle.
    if (current_remaining > 0) {
      const std::uint64_t want =
          std::min<std::uint64_t>(current_remaining, kernels);
      // Pairs map round-robin onto banks; with banks >= kernels there is
      // no conflict, otherwise the extra pairs retry next cycle.
      const std::uint64_t served = std::min<std::uint64_t>(want, banks);
      result.bank_conflict_retries += want - served;
      current_remaining -= served;
      processed += served;
      result.kernel_busy_cycles += served;
      bank_rr = (bank_rr + served) % banks;
      if (!issued_any) {
        issued_any = true;
        first_issue = now;
      }
      last_issue = now;
    } else if (next_group < groups.size() || !param_fifo.empty()) {
      // Kernels idle: either waiting for the rotation unit (params not
      // ready yet) or the FIFO is momentarily empty.
      result.fifo_stall_cycles += 1;
    }
    ++now;
    HJSVD_ASSERT(now < (1ull << 40), "update-array simulation runaway");
  }
  result.pairs_processed = processed;
  result.drain_cycle = last_issue + kernel_latency;
  if (issued_any && last_issue >= first_issue) {
    const double window = static_cast<double>(last_issue - first_issue + 1);
    result.kernel_utilization =
        static_cast<double>(result.kernel_busy_cycles) /
        (window * static_cast<double>(kernels));
  }
  return result;
}

}  // namespace hjsvd::arch

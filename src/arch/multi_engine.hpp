// Multi-engine scaling model ("what if the design used all four HC-2 AEs?").
//
// The Convey HC-2 hosts four application-engine FPGAs; the paper implements
// on one (Section VI.A) and leaves scaling as future work.  This model
// explores that extension under the same calibrated assumptions:
//
//  * Preprocessing row-partitions A across engines (each computes a partial
//    Gram over m/E rows) followed by a tree reduction of the n(n+1)/2
//    partial sums through the shared coprocessor memory.
//  * Covariance updates partition perfectly by D-row slice: rotation (i, j)
//    touches entries (k, i), (k, j) for every k, and the k-ranges are
//    independent — each engine owns a horizontal slice of D.
//  * Rotation-parameter generation stays on one engine (a serial section):
//    the 8-rotations-per-64-cycles cadence is broadcast, so scaling
//    saturates once the distributed update work drops below the cadence —
//    the Amdahl bottleneck the bench makes visible.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/config.hpp"
#include "arch/timing_model.hpp"

namespace hjsvd::arch {

struct MultiEngineConfig {
  AcceleratorConfig engine;      // per-engine build (the paper's)
  std::uint32_t engines = 4;     // HC-2: four AEs
  /// Bandwidth of the partial-Gram reduction through shared memory,
  /// doubles/cycle (shared across engines).
  double reduction_words_per_cycle = 64.0;
};

struct MultiEngineTiming {
  hwsim::Cycle preprocess = 0;
  hwsim::Cycle reduction = 0;     // partial-Gram merge
  hwsim::Cycle sweeps = 0;
  hwsim::Cycle finalize = 0;
  hwsim::Cycle total = 0;
  double seconds = 0.0;
  /// Fraction of sweep time pinned by the serial rotation cadence.
  double rotation_bound_fraction = 0.0;
};

MultiEngineTiming estimate_multi_engine(const MultiEngineConfig& cfg,
                                        std::size_t m, std::size_t n);

/// Deterministic longest-processing-time sharding of weighted work items
/// across `shards` bins: items are taken in descending-cost order (index
/// ascending on ties) and each is placed on the currently least-loaded bin
/// (lowest id on ties).  This is the dispatch rule a multi-engine build
/// would use to spread independent decompositions over its AEs; the
/// software batch API (hjsvd::svd_batch) reuses it to spread a batch over
/// worker threads.  Every index appears in exactly one bin; bins may be
/// empty when there are fewer items than shards.
std::vector<std::vector<std::size_t>> shard_by_cost(
    const std::vector<double>& costs, std::size_t shards);

}  // namespace hjsvd::arch

#include "arch/timing_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "hwsim/dfg.hpp"
#include "svd/ordering.hpp"

namespace hjsvd::arch {
namespace {

using hwsim::Cycle;

Cycle ceil_div_u64(std::uint64_t num, double rate) {
  HJSVD_ASSERT(rate > 0.0, "rate must be positive");
  return static_cast<Cycle>(std::ceil(static_cast<double>(num) / rate));
}

/// Latency of one Jacobi rotation through the shared-FU dataflow (derived
/// once from the list schedule of eqs. (8)-(10)).
std::uint32_t rotation_latency(const AcceleratorConfig& cfg) {
  const auto g = hwsim::make_rotation_dataflow();
  const hwsim::FuSet fus{1, 2, 1, 1};  // Section VI.A's rotation component
  const auto s = hwsim::list_schedule(g, fus, cfg.latencies);
  return static_cast<std::uint32_t>(s.makespan);
}

}  // namespace

TimingBreakdown estimate_timing(const AcceleratorConfig& cfg, std::size_t m,
                                std::size_t n) {
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  HJSVD_ENSURE(cfg.sweeps > 0, "need at least one sweep");
  TimingBreakdown t;
  t.rotation_latency = rotation_latency(cfg);

  const auto mm = static_cast<std::uint64_t>(m);
  const auto nn = static_cast<std::uint64_t>(n);

  // --- Preprocessing: D = A^T A -------------------------------------------
  // MAC work for the upper triangle vs. the input-streaming bound, plus the
  // multiplier/adder fill of the layered array.
  const std::uint64_t macs = mm * nn * (nn + 1) / 2;
  const Cycle compute_bound = ceil_div_u64(macs, cfg.preproc_macs_per_cycle());
  const Cycle input_bound = ceil_div_u64(mm * nn, cfg.input_words_per_cycle);
  const Cycle fill = cfg.latencies.mul + cfg.latencies.add * cfg.preproc_layers;
  t.preprocess = std::max(compute_bound, input_bound) + fill;

  // --- Sweeps ----------------------------------------------------------------
  const std::uint64_t cov_words = nn * (nn + 1) / 2;
  t.covariance_fits_onchip = cov_words <= cfg.bram_covariance_words;
  const std::uint64_t pairs_per_sweep = nn * (nn - 1) / 2;
  t.rotations_per_sweep = pairs_per_sweep;

  // Group structure of the round-robin ordering: rounds of floor(n/2)
  // disjoint pairs, chopped into groups of rotation_group_size.
  const std::uint64_t per_round = nn / 2;
  const std::uint64_t rounds = nn < 2 ? 0 : (nn % 2 == 0 ? nn - 1 : nn);
  const std::uint64_t full_groups_per_round =
      per_round / cfg.rotation_group_size;
  const std::uint64_t tail = per_round % cfg.rotation_group_size;

  const std::uint64_t cov_updates_per_rot = nn >= 2 ? nn - 2 : 0;

  struct GroupBound {
    Cycle cycles = 0;
    bool io_bound = false;
  };
  auto group_cycles = [&](std::uint64_t rotations,
                          bool first_sweep) -> GroupBound {
    Cycle update = ceil_div_u64(rotations * cov_updates_per_rot,
                                cfg.cov_pairs_per_cycle);
    if (first_sweep)
      update += ceil_div_u64(rotations * mm, cfg.col_pairs_per_cycle);
    if (cfg.accumulate_v)  // V rows rotate through the kernels every sweep
      update += ceil_div_u64(rotations * nn, cfg.col_pairs_per_cycle);
    Cycle io = 0;
    if (!t.covariance_fits_onchip) {
      // Each rotated covariance pair is read and written off chip:
      // 4 words per pair, streamed at the HC-2 aggregate bandwidth.
      io = ceil_div_u64(4 * rotations * cov_updates_per_rot,
                        cfg.memory.words_per_cycle);
    }
    const Cycle floor_cycles = cfg.rotation_issue_cycles;
    return GroupBound{std::max({floor_cycles, update, io}),
                      io >= update && io >= floor_cycles && io > 0};
  };

  auto sweep_cycles = [&](bool first_sweep) {
    Cycle c = 0;
    const GroupBound full = group_cycles(cfg.rotation_group_size, first_sweep);
    const std::uint64_t n_full = rounds * full_groups_per_round;
    c += n_full * full.cycles;
    if (full.io_bound) t.io_bound_cycles += n_full * full.cycles;
    if (tail > 0) {
      const GroupBound part = group_cycles(tail, first_sweep);
      c += rounds * part.cycles;
      if (part.io_bound) t.io_bound_cycles += rounds * part.cycles;
    }
    // Pipeline drain at sweep end: last group's rotations and updates.
    c += t.rotation_latency + cfg.latencies.mul + cfg.latencies.add;
    return c;
  };

  t.sweep1 = sweep_cycles(true);
  if (cfg.sweeps > 1) {
    const Cycle io_before = t.io_bound_cycles;
    const Cycle one_late_sweep = sweep_cycles(false);
    const Cycle io_delta = t.io_bound_cycles - io_before;
    t.later_sweeps = static_cast<Cycle>(cfg.sweeps - 1) * one_late_sweep;
    t.io_bound_cycles += (static_cast<Cycle>(cfg.sweeps - 1) - 1) * io_delta;
  }

  // --- Parameter-FIFO steady state ------------------------------------------
  // Occupancy of a later sweep's full group (the regime nearly all cycles
  // run in): a group occupies a FIFO slot from issue until its updates
  // drain, i.e. for rotation_latency + drain cycles, and groups issue
  // every rotation_issue_cycles — unless updates outlast the cadence, in
  // which case the rotation unit runs ahead until the FIFO is full.
  if (rounds > 0) {
    const std::uint64_t g = std::min<std::uint64_t>(
        cfg.rotation_group_size, std::max<std::uint64_t>(per_round, 1));
    Cycle drain = ceil_div_u64(g * cov_updates_per_rot,
                               cfg.cov_pairs_per_cycle);
    if (cfg.accumulate_v)
      drain += ceil_div_u64(g * nn, cfg.col_pairs_per_cycle);
    if (!t.covariance_fits_onchip)
      drain = std::max(drain, ceil_div_u64(4 * g * cov_updates_per_rot,
                                           cfg.memory.words_per_cycle));
    if (drain >= cfg.rotation_issue_cycles) {
      t.param_fifo_occupancy = cfg.param_fifo_depth;
    } else {
      t.param_fifo_occupancy = std::min<std::size_t>(
          cfg.param_fifo_depth,
          1 + (t.rotation_latency + drain) / cfg.rotation_issue_cycles);
    }
    t.param_fifo_occupancy_rotations =
        t.param_fifo_occupancy * cfg.rotation_group_size;
  }

  // --- Finalization: sqrt of the n diagonal entries, pipelined --------------
  t.finalize = nn + cfg.latencies.sqrt;

  t.total = t.preprocess + t.sweep1 + t.later_sweeps + t.finalize;
  t.seconds = static_cast<double>(t.total) / cfg.clock_hz;
  return t;
}

double estimate_seconds(const AcceleratorConfig& cfg, std::size_t m,
                        std::size_t n) {
  return estimate_timing(cfg, m, n).seconds;
}

std::string format_timing(const TimingBreakdown& t, std::size_t m,
                          std::size_t n) {
  std::ostringstream os;
  os << "Accelerator timing for " << m << " x " << n << " ("
     << format_duration(t.seconds) << ", " << t.total << " cycles)\n"
     << "  preprocess:   " << t.preprocess << " cycles\n"
     << "  sweep 1:      " << t.sweep1 << " cycles\n"
     << "  sweeps 2..S:  " << t.later_sweeps << " cycles\n"
     << "  finalize:     " << t.finalize << " cycles\n"
     << "  rotation latency: " << t.rotation_latency << " cycles; "
     << t.rotations_per_sweep << " rotations/sweep; covariance "
     << (t.covariance_fits_onchip ? "fits on-chip" : "spills off-chip")
     << '\n'
     << "  param FIFO steady state: " << t.param_fifo_occupancy
     << " groups (" << t.param_fifo_occupancy_rotations << " rotations)\n";
  return os.str();
}

}  // namespace hjsvd::arch

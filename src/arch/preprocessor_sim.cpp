#include "arch/preprocessor_sim.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace hjsvd::arch {

PreprocessorSimResult simulate_preprocessor(const AcceleratorConfig& cfg,
                                            std::size_t m, std::size_t n) {
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  const std::uint64_t row_macs =
      static_cast<std::uint64_t>(n) * (n + 1) / 2;  // pairs incl. diagonal

  struct LayerState {
    std::uint64_t next_row = 0;       // global row index being processed
    std::uint64_t words_fetched = 0;  // elements of the current row on chip
    std::uint64_t macs_done = 0;      // MACs completed for the current row
    bool active = true;
  };

  const std::uint32_t layers = cfg.preproc_layers;
  const std::uint32_t lanes = cfg.preproc_lanes;
  std::vector<LayerState> layer(layers);
  // Rows are dealt to layers round-robin: layer l gets rows l, l+L, ...
  for (std::uint32_t l = 0; l < layers; ++l) {
    layer[l].next_row = l;
    layer[l].active = l < m;
  }

  PreprocessorSimResult result;
  const auto input_budget_per_cycle =
      static_cast<std::uint64_t>(cfg.input_words_per_cycle);
  HJSVD_ENSURE(input_budget_per_cycle >= 1, "need input bandwidth");

  hwsim::Cycle cycle = 0;
  std::size_t remaining = 0;
  for (const auto& l : layer) remaining += l.active ? 1 : 0;
  while (remaining > 0) {
    // 1. Distribute this cycle's input words round-robin over active layers.
    std::uint64_t budget = input_budget_per_cycle;
    bool any_starved = false;
    for (auto& l : layer) {
      if (!l.active || l.words_fetched >= n) continue;
      const std::uint64_t want = n - l.words_fetched;
      const std::uint64_t take = std::min<std::uint64_t>(
          {want, budget, std::max<std::uint64_t>(1, budget / layers)});
      l.words_fetched += take;
      budget -= take;
      result.words_streamed += take;
      if (take == 0) any_starved = true;
    }
    if (any_starved) ++result.input_stall_cycles;

    // 2. Each layer performs up to `lanes` MACs among the unlocked pairs:
    // w fetched elements unlock w*(w+1)/2 pairs of this row.
    for (auto& l : layer) {
      if (!l.active) continue;
      const std::uint64_t unlocked =
          l.words_fetched * (l.words_fetched + 1) / 2;
      const std::uint64_t avail = std::min(unlocked, row_macs) - l.macs_done;
      const std::uint64_t done = std::min<std::uint64_t>(avail, lanes);
      l.macs_done += done;
      result.macs += done;
      if (l.macs_done >= row_macs) {
        // Row finished; advance by the layer stride.
        l.next_row += layers;
        l.words_fetched = 0;
        l.macs_done = 0;
        if (l.next_row >= m) {
          l.active = false;
          --remaining;
        }
      }
    }
    ++cycle;
    HJSVD_ASSERT(cycle < (1ull << 40), "preprocessor simulation runaway");
  }
  // Pipeline drain: the last products flow through the multiplier and the
  // layer accumulation chain.
  result.cycles =
      cycle + cfg.latencies.mul + cfg.latencies.add * cfg.preproc_layers;
  return result;
}

}  // namespace hjsvd::arch

// Analytic timing model of the accelerator.
//
// Derivation (DESIGN.md §5): the run is a preprocessing phase (D = A^T A on
// the multiplier-array), then `sweeps` sweeps of round-robin rotation
// groups.  Each group of up to 8 rotations is bounded by the slowest of
//   (a) the rotation component's issue cadence (64 cycles per group),
//   (b) the update kernels (column pairs in sweep 1 at 8/cycle, covariance
//       pairs at an effective 16/cycle),
//   (c) off-chip covariance traffic when D does not fit in BRAM (n > 256).
// Singular values are finalized through the pipelined sqrt core.  The model
// reproduces the paper's Table I within ~15% and is cross-validated against
// the transaction-level simulator (accelerator_sim) at small sizes.
#pragma once

#include <string>

#include "arch/config.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::arch {

/// Cycle/time breakdown of one accelerator run.
struct TimingBreakdown {
  hwsim::Cycle preprocess = 0;     // D = A^T A (incl. input streaming bound)
  hwsim::Cycle sweep1 = 0;         // rotations + column & covariance updates
  hwsim::Cycle later_sweeps = 0;   // sweeps 2..S (covariances only)
  hwsim::Cycle finalize = 0;       // sqrt over the diagonal
  hwsim::Cycle total = 0;
  double seconds = 0.0;

  // Diagnostics.
  hwsim::Cycle io_bound_cycles = 0;  // group cycles set by off-chip traffic
  std::uint64_t rotations_per_sweep = 0;
  bool covariance_fits_onchip = true;
  std::uint32_t rotation_latency = 0;  // derived from the dataflow schedule
  /// Steady-state parameter-FIFO occupancy (in rotation groups): the FIFO
  /// saturates at param_fifo_depth when a group's updates take longer than
  /// the issue cadence; otherwise a group stays resident for its rotation
  /// latency plus update drain, so occupancy is that residency divided by
  /// the cadence.  Cross-checked against the simulator's measured
  /// param_fifo_high_water.
  std::size_t param_fifo_occupancy = 0;
  /// The same steady-state occupancy in single rotations (groups x
  /// rotation_group_size) — the unit of the software pipeline's
  /// PipelineStats::queue_high_water, so the hardware bound and the
  /// software queue's measured high-water compare directly (the FIFO
  /// calibration of docs/OBSERVABILITY.md; tests/arch/test_fifo_calibration
  /// asserts the bound dominates).
  std::size_t param_fifo_occupancy_rotations = 0;
};

/// Estimates the execution of an m x n decomposition on the accelerator.
TimingBreakdown estimate_timing(const AcceleratorConfig& cfg, std::size_t m,
                                std::size_t n);

/// Convenience: estimated seconds.
double estimate_seconds(const AcceleratorConfig& cfg, std::size_t m,
                        std::size_t n);

/// Human-readable breakdown.
std::string format_timing(const TimingBreakdown& t, std::size_t m,
                          std::size_t n);

}  // namespace hjsvd::arch

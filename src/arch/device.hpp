// FPGA device and IP-core resource catalog.
//
// The paper implements on one Xilinx Virtex-5 XC5VLX330 of a Convey HC-2
// (Section VI.A).  Capacities below are from the Virtex-5 family datasheet;
// the per-core costs are calibrated estimates for Coregen floating-point
// v5-era double-precision operators (DS335) in the logic-leaning
// configuration the design's DSP budget implies (53% of 192 DSP48E across
// ~49 multipliers leaves ~2 DSP48E per multiplier), plus the Convey
// personality framework overhead.  The resource-model test checks the
// resulting utilization against the paper's Table II.
#pragma once

#include <cstdint>

namespace hjsvd::arch {

/// Programmable-logic capacity of an FPGA device.
struct DeviceCapacity {
  const char* name = "XC5VLX330";
  std::uint32_t luts = 207360;   // 6-input LUTs (51,840 slices x 4)
  std::uint32_t bram36 = 288;    // 36 Kb block RAMs
  std::uint32_t dsp48 = 192;     // DSP48E slices
};

/// The paper's device (default-constructed DeviceCapacity).
constexpr DeviceCapacity virtex5_lx330() { return {}; }

/// Larger parts for the cross-device scaling study (family datasheets).
constexpr DeviceCapacity virtex6_lx760() {
  return {"XC6VLX760", 474240, 720, 864};
}
constexpr DeviceCapacity virtex7_2000t() {
  return {"XC7V2000T", 1221600, 1292, 2160};
}

/// Resource cost of one instantiated core/structure.
struct CoreCost {
  std::uint32_t luts = 0;
  std::uint32_t bram36 = 0;
  std::uint32_t dsp48 = 0;
};

/// Calibrated per-core costs (see file comment).
struct CoreCatalog {
  CoreCost fp_mul{1400, 0, 2};    // DP multiplier, logic+2 DSP config
  CoreCost fp_add{1100, 0, 0};    // DP adder/subtractor
  CoreCost fp_div{5700, 0, 4};    // DP divider
  CoreCost fp_sqrt{3300, 0, 0};   // DP square root
  CoreCost fifo64{500, 1, 0};     // 64-bit synchronization FIFO
  CoreCost fifo127{600, 2, 0};    // 127-bit internal FIFO
  /// Convey HC-2 personality framework (memory controllers' interface,
  /// dispatch, host interface) — a fixed platform cost.
  CoreCost platform{57500, 27, 0};
};

/// The Convey HC-2 coprocessor memory system, as seen by one application
/// engine: 1024-bit aggregate interface, ~80 GB/s peak; at 150 MHz that is
/// ~64 doubles/cycle of streaming bandwidth.
struct Hc2Memory {
  double words_per_cycle = 64.0;
  std::uint32_t request_latency = 95;
};

}  // namespace hjsvd::arch

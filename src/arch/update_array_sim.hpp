// Cycle-stepped simulation of the Update operator (Section V.C / Fig. 5).
//
// The transaction-level accelerator model charges each rotation group
// ceil(pairs / kernels) cycles of update work; this module validates that
// charge from below: it steps the actual micro-structure cycle by cycle —
// the rotation-parameter FIFO, an array of pipelined update kernels
// (mul -> add/sub datapath, one element pair per kernel per cycle), and the
// banked covariance BRAM with one read + one write port per bank — and
// reports drain time, kernel occupancy, FIFO stalls and bank conflicts.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::arch {

/// One rotation group arriving at the update array.
struct UpdateGroupArrival {
  hwsim::Cycle params_ready = 0;  // cycle the rotation unit delivers cos/sin
  std::uint64_t element_pairs = 0;  // column + covariance pairs to process
};

struct UpdateArraySimResult {
  hwsim::Cycle drain_cycle = 0;       // last result out of the kernel array
  std::uint64_t pairs_processed = 0;
  std::uint64_t kernel_busy_cycles = 0;   // sum over kernels
  std::uint64_t fifo_stall_cycles = 0;    // kernels idle waiting for params
  std::uint64_t bank_conflict_retries = 0;
  double kernel_utilization = 0.0;        // busy / (kernels * active window)
};

/// Simulates draining the given arrival schedule through `kernels` update
/// kernels with `banks` covariance BRAM banks and a parameter FIFO of depth
/// `fifo_depth`.  Pairs are assigned round-robin to banks; a bank serves
/// one pair per cycle (one read + one write port), so pair throughput is
/// min(kernels, banks) per cycle plus conflict retries.
UpdateArraySimResult simulate_update_array(
    const std::vector<UpdateGroupArrival>& groups, std::uint32_t kernels,
    std::uint32_t banks, std::uint32_t fifo_depth,
    const fp::CoreLatencies& latencies);

}  // namespace hjsvd::arch

// Transaction-level discrete-event model of the full accelerator.
//
// Faithfully follows Fig. 1's structure: the Hestenes preprocessor builds D
// (simulated cycle-by-cycle), then sweeps of round-robin rotation groups
// flow through the Jacobi rotation component (issue cadence 8 rotations /
// 64 cycles, latency derived by list-scheduling eqs. (8)-(10) onto the
// shared cores) into the update kernels via a bounded FIFO; covariance
// traffic beyond the on-chip capacity is serialized through the HC-2 memory
// channel model.  The sqrt core finalizes the singular values.
//
// Numerics: identical to the library algorithm — the simulator performs the
// same rotations in the same order with the same arithmetic, so its
// singular values are bit-identical to modified_hestenes_svd with
// round-robin ordering, hardware rotation formula, and the layered Gram
// association (asserted by tests/arch tests).
#pragma once

#include <cstdint>

#include "arch/config.hpp"
#include "arch/timing_model.hpp"
#include "linalg/matrix.hpp"
#include "linalg/residuals.hpp"

namespace hjsvd::arch {

/// Result of a simulated accelerator run.
struct AcceleratorRunResult {
  SvdResult svd;  // singular values (the hardware outputs values only)

  // Cycle accounting.
  hwsim::Cycle preprocess_cycles = 0;
  hwsim::Cycle compute_cycles = 0;   // sweeps incl. pipeline drains
  hwsim::Cycle finalize_cycles = 0;
  hwsim::Cycle total_cycles = 0;
  double seconds = 0.0;

  // Diagnostics.
  std::uint64_t rotation_groups = 0;
  std::uint64_t fifo_backpressure_events = 0;  // rotation unit held by updates
  std::uint64_t offchip_words = 0;
  std::uint32_t rotation_latency = 0;
  /// Max parameter-FIFO occupancy observed at any group issue: rotation
  /// groups issued whose covariance updates had not yet drained (in
  /// groups; the software pipeline's PipelineStats::queue_high_water is
  /// the analogous measure in single rotations).  Bounded by
  /// AcceleratorConfig::param_fifo_depth.
  std::size_t param_fifo_high_water = 0;
  /// The same high-water calibrated to single rotations (groups x
  /// rotation_group_size) — directly comparable against the software
  /// pipeline's PipelineStats::queue_high_water, which counts rotations
  /// (tests/arch/test_fifo_calibration.cpp asserts this bound dominates a
  /// software queue of the calibrated capacity).
  std::size_t param_fifo_high_water_rotations = 0;

  // Component occupancy: cycles each unit spent doing work, and its
  // utilization over the sweep phase (the paper's bottleneck analysis —
  // "performance is dominated by the amount of updates after each
  // rotation", Section V.C).
  hwsim::Cycle update_busy_cycles = 0;
  hwsim::Cycle rotation_busy_cycles = 0;
  double update_utilization = 0.0;
  double rotation_utilization = 0.0;
};

/// Simulates decomposing `a` on the configured accelerator.
AcceleratorRunResult simulate_accelerator(const Matrix& a,
                                          const AcceleratorConfig& cfg = {});

}  // namespace hjsvd::arch

// Configuration of the Hestenes-Jacobi accelerator, defaulting to the exact
// build evaluated in the paper (Section VI.A).
#pragma once

#include <cstdint>

#include "arch/device.hpp"
#include "fp/latency.hpp"
#include "obs/sinks.hpp"

namespace hjsvd::arch {

struct AcceleratorConfig {
  // --- Hestenes preprocessor ----------------------------------------------
  /// "four layers of multiplier-array are implemented, in which 16
  /// multipliers and 16 adders are used."
  std::uint32_t preproc_layers = 4;
  std::uint32_t preproc_lanes = 4;  // multipliers per layer

  // --- Jacobi rotation component ------------------------------------------
  /// "1 multiplier, 2 adders, 1 divider and 1 square-root calculators are
  /// used, which can start 8 independent Jacobi rotations in every 64 clock
  /// cycles."
  std::uint32_t rotation_group_size = 8;
  std::uint32_t rotation_issue_cycles = 64;

  // --- Update operator ------------------------------------------------------
  /// "an array of eight update kernels ... 32 multipliers and 16 adders or
  /// subtractors"; each kernel retires one element-pair per cycle.
  std::uint32_t update_kernels = 8;
  /// The preprocessor "is then reconfigured as four update kernels with 16
  /// multipliers and 8 adders in the remaining iterations."
  std::uint32_t preproc_as_kernels = 4;
  /// Effective covariance pair-update rate (pairs/cycle) once all kernels
  /// participate.  12 kernels with the fused symmetric-update datapath give
  /// an effective 16/cycle; this calibration constant reproduces Table I
  /// within ~15% (DESIGN.md §5).
  double cov_pairs_per_cycle = 16.0;
  /// Column element-pair rate in the first sweep (the 8 dedicated kernels).
  double col_pairs_per_cycle = 8.0;

  // --- Sweeps and clock -----------------------------------------------------
  /// "executing at 150MHz for 6 iterations".
  std::uint32_t sweeps = 6;
  double clock_hz = 150e6;

  // --- I/O and storage -------------------------------------------------------
  /// "Two groups of eight 64-bit width FIFOs ... synchronize the input and
  /// output": 8 doubles/cycle of input streaming bandwidth.
  double input_words_per_cycle = 8.0;
  /// "The whole covariance matrix can be stored in the local memory for
  /// matrices of column dimension no greater than 256": upper-triangular
  /// capacity 256*257/2 doubles.
  std::uint64_t bram_covariance_words = 256ull * 257ull / 2ull;
  /// Off-chip memory system (covariance spill traffic when n > 256).
  Hc2Memory memory;

  // --- Extensions beyond the paper's build ------------------------------------
  /// Accumulate the right singular vectors on chip: every rotation also
  /// rotates two n-element columns of V through the update kernels, in
  /// every sweep.  The paper's hardware outputs singular values only; this
  /// models the natural extension (and its cost — see the timing model).
  bool accumulate_v = false;

  /// Depth of the rotation-parameter FIFO between the Jacobi rotation
  /// component and the update operator (groups in flight).
  std::uint32_t param_fifo_depth = 4;

  // --- Floating-point cores ---------------------------------------------------
  fp::CoreLatencies latencies;

  /// Observability sinks (docs/OBSERVABILITY.md).  The simulator registers
  /// its units under obs::kSimulatorPid and timestamps spans in *simulated*
  /// time (cycles / clock_hz), so a hardware timeline loads side by side
  /// with the software engines' wall-clock timelines; metrics land in the
  /// sim.* namespace with explicit units ("rotation_groups" vs "rotations")
  /// next to the software pipeline.* metrics.  Null sinks record nothing.
  obs::ObsContext obs{};

  /// Total update-kernel count active from sweep 2 on.
  std::uint32_t total_kernels_late() const {
    return update_kernels + preproc_as_kernels;
  }
  /// MAC throughput of the preprocessor (multiplies per cycle).
  std::uint32_t preproc_macs_per_cycle() const {
    return preproc_layers * preproc_lanes;
  }
};

}  // namespace hjsvd::arch

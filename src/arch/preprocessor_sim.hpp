// Cycle-stepped simulation of the Hestenes preprocessor (Figs. 2-3).
//
// The preprocessor is L layers of W pipelined multipliers with operand
// reuse: each layer works through one matrix row at a time, multiplying each
// newly entered element against the already-present elements of the same
// row (Fig. 3), so every element is streamed from memory exactly once; the
// products chain through the layers and an accumulator tree to form the
// partial covariances.  The simulation models the shared input bandwidth
// (the two groups of eight 64-bit FIFOs: 8 doubles/cycle) and the per-layer
// MAC throughput, and reports the resulting cycle count — cross-validated
// against the analytic bound of the timing model.
#pragma once

#include <cstdint>

#include "arch/config.hpp"
#include "hwsim/clock.hpp"

namespace hjsvd::arch {

struct PreprocessorSimResult {
  hwsim::Cycle cycles = 0;           // total, including pipeline drain
  std::uint64_t macs = 0;            // multiply-accumulates performed
  std::uint64_t words_streamed = 0;  // matrix elements read from memory
  hwsim::Cycle input_stall_cycles = 0;  // cycles a layer waited for operands
};

/// Simulates building the upper-triangular covariance matrix of an m x n
/// matrix (numerics are produced by gram_upper_ops elsewhere; this model is
/// about cycles, and the MAC count it reports must equal m*n*(n+1)/2).
PreprocessorSimResult simulate_preprocessor(const AcceleratorConfig& cfg,
                                            std::size_t m, std::size_t n);

}  // namespace hjsvd::arch

#include "arch/accelerator_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "arch/preprocessor_sim.hpp"
#include "common/error.hpp"
#include "hwsim/dfg.hpp"
#include "hwsim/memory.hpp"
#include "svd/hestenes.hpp"
#include "svd/ordering.hpp"

namespace hjsvd::arch {
namespace {

using hwsim::Cycle;

Cycle ceil_div(std::uint64_t num, double rate) {
  return static_cast<Cycle>(std::ceil(static_cast<double>(num) / rate));
}

}  // namespace

AcceleratorRunResult simulate_accelerator(const Matrix& a,
                                          const AcceleratorConfig& cfg) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  // Rates below feed ceil_div denominators and the seconds conversion: a
  // zero or non-finite value would silently produce inf/NaN cycle counts
  // instead of an error.
  HJSVD_ENSURE(cfg.sweeps >= 1, "need at least one sweep");
  HJSVD_ENSURE(std::isfinite(cfg.cov_pairs_per_cycle) &&
                   cfg.cov_pairs_per_cycle > 0.0,
               "cov_pairs_per_cycle must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.col_pairs_per_cycle) &&
                   cfg.col_pairs_per_cycle > 0.0,
               "col_pairs_per_cycle must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.clock_hz) && cfg.clock_hz > 0.0,
               "clock_hz must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.input_words_per_cycle) &&
                   cfg.input_words_per_cycle > 0.0,
               "input_words_per_cycle must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.memory.words_per_cycle) &&
                   cfg.memory.words_per_cycle > 0.0,
               "memory words_per_cycle must be finite and positive");

  AcceleratorRunResult result;

  // --- Numerics: exactly the library algorithm in hardware configuration ---
  HestenesConfig num_cfg;
  num_cfg.max_sweeps = cfg.sweeps;
  num_cfg.ordering = Ordering::kRoundRobin;
  num_cfg.formula = RotationFormula::kHardware;
  num_cfg.gram_chunk_rows = cfg.preproc_layers;
  result.svd = modified_hestenes_svd(a, num_cfg);

  // --- Timing: discrete-event walk over the group schedule -----------------
  const auto pre = simulate_preprocessor(cfg, m, n);
  result.preprocess_cycles = pre.cycles;

  const auto rotation_graph = hwsim::make_rotation_dataflow();
  const hwsim::FuSet rotation_fus{1, 2, 1, 1};
  result.rotation_latency = static_cast<std::uint32_t>(
      hwsim::list_schedule(rotation_graph, rotation_fus, cfg.latencies)
          .makespan);

  const std::uint64_t cov_words = static_cast<std::uint64_t>(n) * (n + 1) / 2;
  const bool fits = cov_words <= cfg.bram_covariance_words;
  hwsim::MemoryChannelModel channel{hwsim::MemoryConfig{
      cfg.memory.words_per_cycle, cfg.memory.request_latency}};

  const auto rounds = round_robin_rounds(n);
  const std::uint64_t cov_per_rot = n >= 2 ? n - 2 : 0;

  // The rotation unit may run ahead of the update kernels by the depth of
  // the parameter FIFO (one entry per in-flight group).
  const std::size_t param_fifo_depth = cfg.param_fifo_depth;
  HJSVD_ENSURE(param_fifo_depth >= 1, "parameter FIFO needs depth >= 1");
  std::deque<Cycle> inflight_updates;  // completion cycles of issued groups

  Cycle rot_next_issue = pre.cycles;  // rotations start after D is ready
  Cycle update_free = pre.cycles;
  Cycle last_update_done = pre.cycles;

  for (std::uint32_t sweep = 1; sweep <= cfg.sweeps; ++sweep) {
    const bool first = sweep == 1;
    for (const auto& round : rounds) {
      for (const auto& group : chunk_groups(round, cfg.rotation_group_size)) {
        ++result.rotation_groups;
        const auto g = static_cast<std::uint64_t>(group.size());

        // Backpressure: wait for a free parameter-FIFO slot.
        Cycle issue = rot_next_issue;
        while (inflight_updates.size() >= param_fifo_depth) {
          const Cycle head = inflight_updates.front();
          inflight_updates.pop_front();
          if (head > issue) {
            ++result.fifo_backpressure_events;
            issue = head;
          }
        }
        rot_next_issue = issue + cfg.rotation_issue_cycles;
        const Cycle params_ready = issue + result.rotation_latency;

        // Update phase for this group.
        Cycle work = ceil_div(g * cov_per_rot, cfg.cov_pairs_per_cycle);
        if (first) work += ceil_div(g * m, cfg.col_pairs_per_cycle);
        if (cfg.accumulate_v) work += ceil_div(g * n, cfg.col_pairs_per_cycle);
        result.update_busy_cycles += work;
        result.rotation_busy_cycles += cfg.rotation_issue_cycles;
        Cycle start = std::max(params_ready, update_free);
        Cycle done = start + work;
        if (!fits && cov_per_rot > 0) {
          // Read + write each rotated covariance pair off chip.
          const std::uint64_t words = 4 * g * cov_per_rot;
          result.offchip_words += words;
          const Cycle mem_done = channel.transfer(start, words);
          done = std::max(done, mem_done);
        }
        update_free = done;
        last_update_done = std::max(last_update_done, done);
        inflight_updates.push_back(done);
        // FIFO occupancy at this issue: groups whose updates are still
        // pending (the deque also keeps already-drained completion times
        // until capacity forces a pop, so filter on the issue cycle).
        std::size_t occupancy = 0;
        for (const Cycle done_at : inflight_updates)
          if (done_at > issue) ++occupancy;
        result.param_fifo_high_water =
            std::max(result.param_fifo_high_water, occupancy);
      }
    }
  }

  // --- Finalization: pipelined sqrt over the n diagonal entries ------------
  const Cycle final_start = last_update_done;
  result.finalize_cycles = static_cast<Cycle>(n) + cfg.latencies.sqrt;
  result.total_cycles = final_start + result.finalize_cycles;
  result.compute_cycles = final_start - pre.cycles;
  result.seconds = static_cast<double>(result.total_cycles) / cfg.clock_hz;
  if (result.compute_cycles > 0) {
    result.update_utilization =
        static_cast<double>(result.update_busy_cycles) /
        static_cast<double>(result.compute_cycles);
    result.rotation_utilization =
        static_cast<double>(result.rotation_busy_cycles) /
        static_cast<double>(result.compute_cycles);
  }
  return result;
}

}  // namespace hjsvd::arch

#include "arch/accelerator_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "arch/preprocessor_sim.hpp"
#include "common/error.hpp"
#include "hwsim/dfg.hpp"
#include "hwsim/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svd/hestenes.hpp"
#include "svd/ordering.hpp"

namespace hjsvd::arch {
namespace {

using hwsim::Cycle;

Cycle ceil_div(std::uint64_t num, double rate) {
  return static_cast<Cycle>(std::ceil(static_cast<double>(num) / rate));
}

}  // namespace

AcceleratorRunResult simulate_accelerator(const Matrix& a,
                                          const AcceleratorConfig& cfg) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  HJSVD_ENSURE(m > 0 && n > 0, "matrix must be non-empty");
  // Rates below feed ceil_div denominators and the seconds conversion: a
  // zero or non-finite value would silently produce inf/NaN cycle counts
  // instead of an error.
  HJSVD_ENSURE(cfg.sweeps >= 1, "need at least one sweep");
  HJSVD_ENSURE(std::isfinite(cfg.cov_pairs_per_cycle) &&
                   cfg.cov_pairs_per_cycle > 0.0,
               "cov_pairs_per_cycle must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.col_pairs_per_cycle) &&
                   cfg.col_pairs_per_cycle > 0.0,
               "col_pairs_per_cycle must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.clock_hz) && cfg.clock_hz > 0.0,
               "clock_hz must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.input_words_per_cycle) &&
                   cfg.input_words_per_cycle > 0.0,
               "input_words_per_cycle must be finite and positive");
  HJSVD_ENSURE(std::isfinite(cfg.memory.words_per_cycle) &&
                   cfg.memory.words_per_cycle > 0.0,
               "memory words_per_cycle must be finite and positive");

  AcceleratorRunResult result;

  auto* trace = obs::active(cfg.obs.trace);
  auto* metrics = obs::active(cfg.obs.metrics);
  // Simulated-time timelines under the simulator pid: spans are stamped in
  // microseconds of *simulated* time (cycles / clock_hz), not wall clock.
  const double us_per_cycle = 1e6 / cfg.clock_hz;
  std::uint32_t pre_tid = 0, rot_tid = 0, upd_tid = 0;
  if (trace != nullptr) {
    pre_tid = trace->register_thread("sim preprocessor", obs::kSimulatorPid);
    rot_tid = trace->register_thread("sim rotation unit", obs::kSimulatorPid);
    upd_tid = trace->register_thread("sim update kernels", obs::kSimulatorPid);
  }

  // --- Numerics: exactly the library algorithm in hardware configuration ---
  // Deliberately runs with null sinks: the simulator's own sim.* emission
  // covers this run, and forwarding the sinks here would double-count the
  // svd.* counters when a CLI attaches one registry to a library run and a
  // simulator run side by side.
  HestenesConfig num_cfg;
  num_cfg.max_sweeps = cfg.sweeps;
  num_cfg.ordering = Ordering::kRoundRobin;
  num_cfg.formula = RotationFormula::kHardware;
  num_cfg.gram_chunk_rows = cfg.preproc_layers;
  result.svd = modified_hestenes_svd(a, num_cfg);

  // --- Timing: discrete-event walk over the group schedule -----------------
  const auto pre = simulate_preprocessor(cfg, m, n);
  result.preprocess_cycles = pre.cycles;
  if (trace != nullptr)
    trace->emit_complete(pre_tid, "sim", "preprocess", 0.0,
                         static_cast<double>(pre.cycles) * us_per_cycle,
                         obs::ArgsBuilder()
                             .add("rows", m)
                             .add("cols", n)
                             .add("cycles", static_cast<std::uint64_t>(pre.cycles))
                             .str());

  const auto rotation_graph = hwsim::make_rotation_dataflow();
  const hwsim::FuSet rotation_fus{1, 2, 1, 1};
  result.rotation_latency = static_cast<std::uint32_t>(
      hwsim::list_schedule(rotation_graph, rotation_fus, cfg.latencies)
          .makespan);

  const std::uint64_t cov_words = static_cast<std::uint64_t>(n) * (n + 1) / 2;
  const bool fits = cov_words <= cfg.bram_covariance_words;
  hwsim::MemoryChannelModel channel{hwsim::MemoryConfig{
      cfg.memory.words_per_cycle, cfg.memory.request_latency}};

  const auto rounds = round_robin_rounds(n);
  const std::uint64_t cov_per_rot = n >= 2 ? n - 2 : 0;

  // The rotation unit may run ahead of the update kernels by the depth of
  // the parameter FIFO (one entry per in-flight group).
  const std::size_t param_fifo_depth = cfg.param_fifo_depth;
  HJSVD_ENSURE(param_fifo_depth >= 1, "parameter FIFO needs depth >= 1");
  std::deque<Cycle> inflight_updates;  // completion cycles of issued groups

  Cycle rot_next_issue = pre.cycles;  // rotations start after D is ready
  Cycle update_free = pre.cycles;
  Cycle last_update_done = pre.cycles;

  // Per-group spans and the occupancy timeline are capped: a large run has
  // hundreds of thousands of groups and the trace would dwarf the data it
  // describes.  Above the cap only phase-level events are recorded (an
  // instant marks the suppression).
  constexpr std::uint64_t kMaxGroupEvents = 20000;
  std::uint64_t groups_per_sweep = 0;
  for (const auto& round : rounds)
    groups_per_sweep += chunk_groups(round, cfg.rotation_group_size).size();
  const std::uint64_t total_groups =
      groups_per_sweep * static_cast<std::uint64_t>(cfg.sweeps);
  const bool group_detail = total_groups <= kMaxGroupEvents;
  if (trace != nullptr && !group_detail)
    trace->emit_instant(rot_tid, "sim", "group-detail-suppressed",
                        static_cast<double>(pre.cycles) * us_per_cycle,
                        obs::ArgsBuilder()
                            .add("total_groups", total_groups)
                            .add("cap", kMaxGroupEvents)
                            .str());

  for (std::uint32_t sweep = 1; sweep <= cfg.sweeps; ++sweep) {
    const bool first = sweep == 1;
    for (const auto& round : rounds) {
      for (const auto& group : chunk_groups(round, cfg.rotation_group_size)) {
        ++result.rotation_groups;
        const auto g = static_cast<std::uint64_t>(group.size());

        // Backpressure: wait for a free parameter-FIFO slot.
        Cycle issue = rot_next_issue;
        while (inflight_updates.size() >= param_fifo_depth) {
          const Cycle head = inflight_updates.front();
          inflight_updates.pop_front();
          if (head > issue) {
            ++result.fifo_backpressure_events;
            issue = head;
          }
        }
        rot_next_issue = issue + cfg.rotation_issue_cycles;
        const Cycle params_ready = issue + result.rotation_latency;

        // Update phase for this group.
        Cycle work = ceil_div(g * cov_per_rot, cfg.cov_pairs_per_cycle);
        if (first) work += ceil_div(g * m, cfg.col_pairs_per_cycle);
        if (cfg.accumulate_v) work += ceil_div(g * n, cfg.col_pairs_per_cycle);
        result.update_busy_cycles += work;
        result.rotation_busy_cycles += cfg.rotation_issue_cycles;
        Cycle start = std::max(params_ready, update_free);
        Cycle done = start + work;
        if (!fits && cov_per_rot > 0) {
          // Read + write each rotated covariance pair off chip.
          const std::uint64_t words = 4 * g * cov_per_rot;
          result.offchip_words += words;
          const Cycle mem_done = channel.transfer(start, words);
          done = std::max(done, mem_done);
        }
        update_free = done;
        last_update_done = std::max(last_update_done, done);
        inflight_updates.push_back(done);
        // FIFO occupancy at this issue: groups whose updates are still
        // pending (the deque also keeps already-drained completion times
        // until capacity forces a pop, so filter on the issue cycle).
        std::size_t occupancy = 0;
        for (const Cycle done_at : inflight_updates)
          if (done_at > issue) ++occupancy;
        result.param_fifo_high_water =
            std::max(result.param_fifo_high_water, occupancy);
        if (group_detail) {
          if (trace != nullptr) {
            const auto group_args = obs::ArgsBuilder()
                                        .add("sweep", sweep)
                                        .add("rotations", g)
                                        .str();
            trace->emit_complete(
                rot_tid, "sim", "rotation-group",
                static_cast<double>(issue) * us_per_cycle,
                static_cast<double>(cfg.rotation_issue_cycles) * us_per_cycle,
                group_args);
            trace->emit_complete(upd_tid, "sim", "update-group",
                                 static_cast<double>(start) * us_per_cycle,
                                 static_cast<double>(done - start) *
                                     us_per_cycle,
                                 group_args);
            // Counter track mirrors the metrics series on simulated time, so
            // Perfetto can plot FIFO fill level under the group spans.
            trace->emit_counter(rot_tid, "sim", "sim.param_fifo.occupancy",
                                static_cast<double>(issue) * us_per_cycle,
                                static_cast<double>(occupancy));
          }
          if (metrics != nullptr)
            metrics->series_append("sim.param_fifo.occupancy",
                                   "rotation_groups",
                                   static_cast<double>(issue),
                                   static_cast<double>(occupancy));
        }
      }
    }
  }

  // --- Finalization: pipelined sqrt over the n diagonal entries ------------
  const Cycle final_start = last_update_done;
  result.finalize_cycles = static_cast<Cycle>(n) + cfg.latencies.sqrt;
  result.total_cycles = final_start + result.finalize_cycles;
  result.compute_cycles = final_start - pre.cycles;
  result.seconds = static_cast<double>(result.total_cycles) / cfg.clock_hz;
  if (result.compute_cycles > 0) {
    result.update_utilization =
        static_cast<double>(result.update_busy_cycles) /
        static_cast<double>(result.compute_cycles);
    result.rotation_utilization =
        static_cast<double>(result.rotation_busy_cycles) /
        static_cast<double>(result.compute_cycles);
  }
  result.param_fifo_high_water_rotations =
      result.param_fifo_high_water * cfg.rotation_group_size;
  if (trace != nullptr)
    trace->emit_complete(rot_tid, "sim", "finalize",
                         static_cast<double>(final_start) * us_per_cycle,
                         static_cast<double>(result.finalize_cycles) *
                             us_per_cycle);
  if (metrics != nullptr) {
    const auto cycles_gauge = [&](const char* name, Cycle c) {
      metrics->gauge_set(name, "cycles", static_cast<double>(c));
    };
    cycles_gauge("sim.cycles.preprocess", result.preprocess_cycles);
    cycles_gauge("sim.cycles.compute", result.compute_cycles);
    cycles_gauge("sim.cycles.finalize", result.finalize_cycles);
    cycles_gauge("sim.cycles.total", result.total_cycles);
    metrics->gauge_set("sim.seconds", "s", result.seconds);
    metrics->counter_add("sim.rotation_groups", "rotation_groups",
                         result.rotation_groups);
    metrics->counter_add("sim.fifo_backpressure_events", "events",
                         result.fifo_backpressure_events);
    metrics->counter_add("sim.offchip_words", "words", result.offchip_words);
    metrics->gauge_set("sim.rotation_latency", "cycles",
                       static_cast<double>(result.rotation_latency));
    metrics->gauge_set("sim.rotation_group_size", "rotations",
                       static_cast<double>(cfg.rotation_group_size));
    metrics->gauge_set("sim.param_fifo.depth", "rotation_groups",
                       static_cast<double>(cfg.param_fifo_depth));
    metrics->gauge_set("sim.param_fifo.high_water", "rotation_groups",
                       static_cast<double>(result.param_fifo_high_water));
    metrics->gauge_set("sim.param_fifo.high_water_rotations", "rotations",
                       static_cast<double>(
                           result.param_fifo_high_water_rotations));
    metrics->gauge_set("sim.update_utilization", "1",
                       result.update_utilization);
    metrics->gauge_set("sim.rotation_utilization", "1",
                       result.rotation_utilization);
  }
  return result;
}

}  // namespace hjsvd::arch

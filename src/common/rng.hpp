// Deterministic, seedable random number generation.
//
// All experiments in this repository must be reproducible bit-for-bit, so we
// carry our own generator (xoshiro256++) instead of std::mt19937 whose
// distribution implementations vary across standard libraries.
#pragma once

#include <array>
#include <cstdint>

namespace hjsvd {

/// xoshiro256++ PRNG (Blackman & Vigna).  Deterministic across platforms.
class Rng {
 public:
  /// Seeds the state from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal deviate (Box–Muller; deterministic, no cached state
  /// surprises: both deviates are generated, one discarded).
  double gaussian();

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t bounded(std::uint64_t bound);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace hjsvd

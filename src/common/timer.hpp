// Minimal wall-clock timer used by the software-baseline benchmarks.
#pragma once

#include <chrono>

namespace hjsvd {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace hjsvd

// Reusable work-stealing scheduler for a fixed, up-front task set.
//
// The caller supplies per-task cost estimates and an initial placement of
// tasks onto workers (typically arch::shard_by_cost LPT bins, so the
// deterministic cost model still guides locality).  Each worker owns a
// deque seeded with its bin in descending-cost order; the owner pops from
// the front (largest remaining task first, preserving LPT intent) and an
// idle worker steals one task from the *back* (smallest task) of the
// victim with the greatest remaining estimated cost ("steal from
// richest").  No task is ever added after start, so termination is simply
// "every deque drained" — workers never sleep, they exit.
//
// Scheduling decisions (which worker runs which task, and when) are
// timing-dependent by design; the pool is therefore only suitable for
// tasks whose *results* do not depend on placement.  hjsvd::svd_batch
// satisfies this because every engine is bitwise-deterministic at any
// thread count.
//
// Error contract: a throwing task does not cancel the rest of the pool —
// every other task still runs to completion — and after the join the
// exception of the *lowest task index* is rethrown, independent of thread
// timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace hjsvd {

/// Context handed to the task callback.
struct PoolTaskInfo {
  std::size_t task = 0;     ///< Index into the submitted task set.
  std::size_t worker = 0;   ///< Executing worker id in [0, workers).
  std::size_t helpers = 0;  ///< Extra workers borrowed for nested parallelism.
  bool stolen = false;      ///< Acquired by stealing rather than from the
                            ///< worker's own seeded deque.
  std::size_t queued = 0;   ///< Tasks still waiting across all deques at the
                            ///< moment this one was acquired.
};

struct WorkStealingOptions {
  /// Worker threads to spawn.  Must be >= 1.
  std::size_t workers = 1;
  /// Total thread budget a single task may grow to via helper borrowing
  /// (1 owner + helpers <= total_width).  Defaults to `workers` when 0.
  /// Borrowed helpers are a *reservation* against this budget, not a
  /// transfer of live threads: while seeded tasks drain elsewhere the
  /// process may transiently run more than total_width threads.  That is
  /// acceptable because helpers only ever change scheduling, never
  /// results.
  std::size_t total_width = 0;
  /// Per-task helper cap; tasks beyond the vector's size (or an empty
  /// vector) get 0, i.e. they always run single-threaded.
  std::vector<std::size_t> max_helpers;
  /// Optional hook run on each worker thread before it acquires any task
  /// (e.g. to register a trace timeline for that worker).
  std::function<void(std::size_t worker)> worker_start;
};

/// Aggregate scheduler behaviour of one run_work_stealing() call.
struct PoolStats {
  std::size_t workers = 0;            ///< Worker threads actually spawned.
  std::uint64_t tasks = 0;            ///< Tasks executed (== task count).
  std::uint64_t steals = 0;           ///< Tasks acquired from a victim deque.
  std::uint64_t nested_runs = 0;      ///< Tasks that ran with helpers > 0.
  std::uint64_t helpers_granted = 0;  ///< Sum of helpers over nested runs.
  double wall_s = 0.0;                ///< Spawn-to-join wall clock.
  std::vector<std::uint64_t> executed;  ///< Per worker: tasks run.
  std::vector<std::uint64_t> stolen;    ///< Per worker: tasks it stole.
  std::vector<double> busy_s;  ///< Per worker: time spent inside tasks.
  std::vector<double> idle_s;  ///< Per worker: wall_s - busy_s (steal-loop
                               ///< spinning plus post-drain waiting).
  /// Queue occupancy samples in acquisition order: element k is the number
  /// of tasks still waiting when the k-th task (globally) was acquired.
  std::vector<std::size_t> occupancy;
};

/// Warm work-stealing pool: worker threads are spawned once at construction
/// and stay resident, parked on a condition variable between waves, so a
/// long-lived caller (hjsvd::EngineInstance under hjsvd_serve) pays the
/// thread-spawn cost exactly once instead of per batch.  Each run() call
/// dispatches one wave of tasks with the same deque/steal/error semantics
/// as run_work_stealing above; a wave may use any options.workers up to the
/// pool size — the first options.workers resident threads participate, the
/// rest sleep through the wave.  Scheduling stays timing-dependent, so the
/// same "bitwise-deterministic tasks only" contract applies.
class WorkStealingPool {
 public:
  /// Spawns `workers` resident threads (must be >= 1).
  explicit WorkStealingPool(std::size_t workers);
  /// Joins the resident threads.  No run() may be in flight.
  ~WorkStealingPool();
  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Resident worker threads.
  std::size_t workers() const { return workers_; }

  /// Dispatches one wave: runs `fn` once per task across the first
  /// options.workers resident threads (<= workers()) and returns the
  /// scheduler stats.  Input contract and error contract are identical to
  /// run_work_stealing; options.worker_start runs per wave.  Thread-safe —
  /// concurrent run() calls serialize, they never interleave waves.
  /// stats.wall_s covers dispatch-to-drain (no spawn cost by design).
  PoolStats run(const std::vector<double>& costs,
                const std::vector<std::vector<std::size_t>>& bins,
                const WorkStealingOptions& options,
                const std::function<void(const PoolTaskInfo&)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t workers_ = 0;
};

/// Runs `fn` once per task across `options.workers` threads and returns the
/// scheduler stats.  `costs[t]` is the estimated cost of task t (finite,
/// >= 0); `bins[w]` lists the tasks seeded onto worker w's deque, and the
/// bins must cover every task exactly once (bins beyond options.workers are
/// rejected).  Throws hjsvd::Error on malformed input; rethrows the
/// lowest-index task exception after all tasks have run.  One-shot
/// convenience over WorkStealingPool: spawns an ephemeral pool of
/// options.workers threads, dispatches a single wave, and tears it down.
PoolStats run_work_stealing(const std::vector<double>& costs,
                            const std::vector<std::vector<std::size_t>>& bins,
                            const WorkStealingOptions& options,
                            const std::function<void(const PoolTaskInfo&)>& fn);

}  // namespace hjsvd

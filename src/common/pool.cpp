#include "common/pool.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace hjsvd {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One worker's deque.  `remaining` mirrors the summed estimated cost of
/// the queued tasks; it is only *written* under `mu` but read lock-free by
/// thieves ranking victims — a stale read merely picks a slightly poorer
/// victim, never a wrong result.
struct WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;
  std::atomic<double> remaining{0.0};
};

}  // namespace

PoolStats run_work_stealing(
    const std::vector<double>& costs,
    const std::vector<std::vector<std::size_t>>& bins,
    const WorkStealingOptions& options,
    const std::function<void(const PoolTaskInfo&)>& fn) {
  HJSVD_ENSURE(options.workers >= 1, "pool needs at least one worker");
  HJSVD_ENSURE(bins.size() <= options.workers,
               "more seeded bins than pool workers");
  HJSVD_ENSURE(static_cast<bool>(fn), "pool task callback must be callable");
  const std::size_t n_tasks = costs.size();
  for (double c : costs)
    HJSVD_ENSURE(std::isfinite(c) && c >= 0.0,
                 "task cost estimates must be finite and non-negative");
  {
    std::vector<bool> seen(n_tasks, false);
    std::size_t covered = 0;
    for (const auto& bin : bins)
      for (std::size_t t : bin) {
        HJSVD_ENSURE(t < n_tasks, "seeded bin references unknown task");
        HJSVD_ENSURE(!seen[t], "task seeded into more than one bin");
        seen[t] = true;
        ++covered;
      }
    HJSVD_ENSURE(covered == n_tasks, "seeded bins must cover every task");
  }

  const std::size_t workers = options.workers;
  const std::size_t width =
      options.total_width == 0 ? workers : options.total_width;

  std::vector<WorkerDeque> deques(workers);
  for (std::size_t w = 0; w < bins.size(); ++w) {
    double sum = 0.0;
    for (std::size_t t : bins[w]) {
      deques[w].tasks.push_back(t);
      sum += costs[t];
    }
    deques[w].remaining.store(sum, std::memory_order_relaxed);
  }

  PoolStats stats;
  stats.workers = workers;
  stats.tasks = n_tasks;
  stats.executed.assign(workers, 0);
  stats.stolen.assign(workers, 0);
  stats.busy_s.assign(workers, 0.0);
  stats.idle_s.assign(workers, 0.0);
  stats.occupancy.assign(n_tasks, 0);

  // Per-task exception slots: each is written by exactly one worker (the
  // one that ran the task), read by the caller after the join.
  std::vector<std::exception_ptr> errors(n_tasks);
  std::vector<std::uint64_t> nested(workers, 0);
  std::vector<std::uint64_t> granted(workers, 0);

  // Unacquired tasks; drives the occupancy samples and their global order.
  std::atomic<std::size_t> queued{n_tasks};
  // Helper reservations currently outstanding against `width`.
  std::atomic<std::size_t> borrowed{0};

  // Pop the task with the largest remaining estimate (front of the
  // LPT-ordered deque); thieves take the smallest (back) so the victim
  // keeps the work its seed placed there for longest.
  const auto try_pop = [&](std::size_t w, bool back,
                           std::size_t* out) -> bool {
    WorkerDeque& d = deques[w];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.tasks.empty()) {
      d.remaining.store(0.0, std::memory_order_relaxed);
      return false;
    }
    if (back) {
      *out = d.tasks.back();
      d.tasks.pop_back();
    } else {
      *out = d.tasks.front();
      d.tasks.pop_front();
    }
    const double rest =
        d.remaining.load(std::memory_order_relaxed) - costs[*out];
    d.remaining.store(rest > 0.0 ? rest : 0.0, std::memory_order_relaxed);
    return true;
  };

  const auto worker_main = [&](std::size_t self) {
    if (options.worker_start) options.worker_start(self);
    double busy = 0.0;
    for (;;) {
      std::size_t task = 0;
      bool stolen = false;
      if (!try_pop(self, /*back=*/false, &task)) {
        // Own deque drained: steal from the richest victim.  Snapshots can
        // be stale, so fall back to a locked linear sweep before giving up
        // (zero-cost tasks never show up in the snapshot ranking).
        bool found = false;
        for (;;) {
          std::size_t victim = workers;
          double best = 0.0;
          for (std::size_t w = 0; w < workers; ++w) {
            if (w == self) continue;
            const double r = deques[w].remaining.load(std::memory_order_relaxed);
            if (r > best) {
              best = r;
              victim = w;
            }
          }
          if (victim == workers) break;
          if (try_pop(victim, /*back=*/true, &task)) {
            found = true;
            break;
          }
        }
        if (!found)
          for (std::size_t w = 0; w < workers && !found; ++w)
            found = try_pop(w, /*back=*/true, &task);
        // No task anywhere.  Tasks are never enqueued after start, so an
        // all-empty sweep is conclusive: exit instead of spinning.
        if (!found) break;
        stolen = true;
      }

      PoolTaskInfo info;
      info.task = task;
      info.worker = self;
      info.stolen = stolen;
      const std::size_t before = queued.fetch_sub(1, std::memory_order_acq_rel);
      info.queued = before - 1;
      stats.occupancy[n_tasks - before] = info.queued;

      // Borrow helpers for a qualifying task: reserve against the total
      // width so one big task can expand to the pool's full budget.  The
      // reservation is advisory (see pool.hpp) — it bounds deliberate
      // oversubscription and never influences results.
      std::size_t cap = task < options.max_helpers.size()
                            ? options.max_helpers[task]
                            : 0;
      if (cap > width - 1) cap = width - 1;
      std::size_t got = 0;
      if (cap > 0) {
        std::size_t cur = borrowed.load(std::memory_order_relaxed);
        do {
          const std::size_t avail = width - 1 > cur ? width - 1 - cur : 0;
          got = cap < avail ? cap : avail;
        } while (got > 0 &&
                 !borrowed.compare_exchange_weak(cur, cur + got,
                                                 std::memory_order_acq_rel));
      }
      info.helpers = got;
      if (got > 0) {
        ++nested[self];
        granted[self] += got;
      }

      const auto task_t0 = std::chrono::steady_clock::now();
      try {
        fn(info);
      } catch (...) {
        errors[task] = std::current_exception();
      }
      busy += seconds_since(task_t0);
      if (got > 0) borrowed.fetch_sub(got, std::memory_order_acq_rel);
      ++stats.executed[self];
      if (stolen) ++stats.stolen[self];
    }
    stats.busy_s[self] = busy;
  };

  const auto pool_t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads.emplace_back(worker_main, w);
  for (auto& t : threads) t.join();
  stats.wall_s = seconds_since(pool_t0);

  for (std::size_t w = 0; w < workers; ++w) {
    stats.steals += stats.stolen[w];
    stats.nested_runs += nested[w];
    stats.helpers_granted += granted[w];
    const double idle = stats.wall_s - stats.busy_s[w];
    stats.idle_s[w] = idle > 0.0 ? idle : 0.0;
  }

  // Deterministic error surface: the lowest-index failure wins no matter
  // which worker observed it first.
  for (std::size_t t = 0; t < n_tasks; ++t)
    if (errors[t]) std::rethrow_exception(errors[t]);

  return stats;
}

}  // namespace hjsvd

#include "common/pool.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"

namespace hjsvd {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One worker's deque.  `remaining` mirrors the summed estimated cost of
/// the queued tasks; it is only *written* under `mu` but read lock-free by
/// thieves ranking victims — a stale read merely picks a slightly poorer
/// victim, never a wrong result.
struct WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;
  std::atomic<double> remaining{0.0};
};

/// Everything one wave's workers share.  Lives on the dispatching run()
/// call's stack; participants are guaranteed to finish (and stop touching
/// it) before run() returns, so plain pointers are safe.
struct WaveState {
  const std::vector<double>* costs = nullptr;
  const WorkStealingOptions* options = nullptr;
  const std::function<void(const PoolTaskInfo&)>* fn = nullptr;
  std::vector<WorkerDeque>* deques = nullptr;
  PoolStats* stats = nullptr;
  std::vector<std::exception_ptr>* errors = nullptr;
  std::vector<std::uint64_t>* nested = nullptr;
  std::vector<std::uint64_t>* granted = nullptr;
  /// Unacquired tasks; drives the occupancy samples and their global order.
  std::atomic<std::size_t> queued{0};
  /// Helper reservations currently outstanding against `width`.
  std::atomic<std::size_t> borrowed{0};
  std::size_t participants = 0;
  std::size_t width = 0;
  std::size_t n_tasks = 0;
};

/// The work-stealing loop of one participating worker: drain the own deque
/// front-first, then steal back-first from the richest victim until every
/// deque is empty.
void wave_worker(WaveState& wv, std::size_t self) {
  const std::vector<double>& costs = *wv.costs;
  std::vector<WorkerDeque>& deques = *wv.deques;
  const WorkStealingOptions& options = *wv.options;
  PoolStats& stats = *wv.stats;
  const std::size_t workers = wv.participants;
  const std::size_t width = wv.width;

  if (options.worker_start) options.worker_start(self);

  // Pop the task with the largest remaining estimate (front of the
  // LPT-ordered deque); thieves take the smallest (back) so the victim
  // keeps the work its seed placed there for longest.
  const auto try_pop = [&](std::size_t w, bool back,
                           std::size_t* out) -> bool {
    WorkerDeque& d = deques[w];
    std::lock_guard<std::mutex> lock(d.mu);
    if (d.tasks.empty()) {
      d.remaining.store(0.0, std::memory_order_relaxed);
      return false;
    }
    if (back) {
      *out = d.tasks.back();
      d.tasks.pop_back();
    } else {
      *out = d.tasks.front();
      d.tasks.pop_front();
    }
    const double rest =
        d.remaining.load(std::memory_order_relaxed) - costs[*out];
    d.remaining.store(rest > 0.0 ? rest : 0.0, std::memory_order_relaxed);
    return true;
  };

  double busy = 0.0;
  for (;;) {
    std::size_t task = 0;
    bool stolen = false;
    if (!try_pop(self, /*back=*/false, &task)) {
      // Own deque drained: steal from the richest victim.  Snapshots can
      // be stale, so fall back to a locked linear sweep before giving up
      // (zero-cost tasks never show up in the snapshot ranking).
      bool found = false;
      for (;;) {
        std::size_t victim = workers;
        double best = 0.0;
        for (std::size_t w = 0; w < workers; ++w) {
          if (w == self) continue;
          const double r = deques[w].remaining.load(std::memory_order_relaxed);
          if (r > best) {
            best = r;
            victim = w;
          }
        }
        if (victim == workers) break;
        if (try_pop(victim, /*back=*/true, &task)) {
          found = true;
          break;
        }
      }
      if (!found)
        for (std::size_t w = 0; w < workers && !found; ++w)
          found = try_pop(w, /*back=*/true, &task);
      // No task anywhere.  Tasks are never enqueued after wave start, so an
      // all-empty sweep is conclusive: exit instead of spinning.
      if (!found) break;
      stolen = true;
    }

    PoolTaskInfo info;
    info.task = task;
    info.worker = self;
    info.stolen = stolen;
    const std::size_t before =
        wv.queued.fetch_sub(1, std::memory_order_acq_rel);
    info.queued = before - 1;
    stats.occupancy[wv.n_tasks - before] = info.queued;

    // Borrow helpers for a qualifying task: reserve against the total
    // width so one big task can expand to the pool's full budget.  The
    // reservation is advisory (see pool.hpp) — it bounds deliberate
    // oversubscription and never influences results.
    std::size_t cap =
        task < options.max_helpers.size() ? options.max_helpers[task] : 0;
    if (cap > width - 1) cap = width - 1;
    std::size_t got = 0;
    if (cap > 0) {
      std::size_t cur = wv.borrowed.load(std::memory_order_relaxed);
      do {
        const std::size_t avail = width - 1 > cur ? width - 1 - cur : 0;
        got = cap < avail ? cap : avail;
      } while (got > 0 &&
               !wv.borrowed.compare_exchange_weak(cur, cur + got,
                                                  std::memory_order_acq_rel));
    }
    info.helpers = got;
    if (got > 0) {
      ++(*wv.nested)[self];
      (*wv.granted)[self] += got;
    }

    const auto task_t0 = std::chrono::steady_clock::now();
    try {
      (*wv.fn)(info);
    } catch (...) {
      (*wv.errors)[task] = std::current_exception();
    }
    busy += seconds_since(task_t0);
    if (got > 0) wv.borrowed.fetch_sub(got, std::memory_order_acq_rel);
    ++stats.executed[self];
    if (stolen) ++stats.stolen[self];
  }
  stats.busy_s[self] = busy;
}

}  // namespace

/// Resident-thread state.  Threads park on `cv` between waves and watch
/// `generation`; run() installs a wave, bumps the generation, and waits on
/// `done_cv` until every participant has acknowledged.  Because run()
/// blocks until the acknowledgement count drains, the WaveState (stack of
/// run()) outlives every participant's use of it; non-participating
/// threads never dereference `wave` at all.
struct WorkStealingPool::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  std::size_t participants = 0;   ///< Of the current wave.
  std::size_t done_pending = 0;   ///< Participants yet to finish the wave.
  WaveState* wave = nullptr;
  bool shutdown = false;
  /// Serializes run() callers; resident threads never take it.
  std::mutex run_mu;
  std::vector<std::thread> threads;

  void resident_main(std::size_t self) {
    std::uint64_t seen = 0;
    for (;;) {
      WaveState* wv = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        if (self < participants) wv = wave;
      }
      if (wv == nullptr) continue;  // not a participant of this wave
      wave_worker(*wv, self);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--done_pending == 0) done_cv.notify_all();
      }
    }
  }
};

WorkStealingPool::WorkStealingPool(std::size_t workers)
    : impl_(std::make_unique<Impl>()), workers_(workers) {
  HJSVD_ENSURE(workers >= 1, "pool needs at least one worker");
  impl_->threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    impl_->threads.emplace_back([this, w] { impl_->resident_main(w); });
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->cv.notify_all();
  for (auto& t : impl_->threads) t.join();
}

PoolStats WorkStealingPool::run(
    const std::vector<double>& costs,
    const std::vector<std::vector<std::size_t>>& bins,
    const WorkStealingOptions& options,
    const std::function<void(const PoolTaskInfo&)>& fn) {
  HJSVD_ENSURE(options.workers >= 1, "pool needs at least one worker");
  HJSVD_ENSURE(options.workers <= workers_,
               "wave requests more workers than the pool owns");
  HJSVD_ENSURE(bins.size() <= options.workers,
               "more seeded bins than pool workers");
  HJSVD_ENSURE(static_cast<bool>(fn), "pool task callback must be callable");
  const std::size_t n_tasks = costs.size();
  for (double c : costs)
    HJSVD_ENSURE(std::isfinite(c) && c >= 0.0,
                 "task cost estimates must be finite and non-negative");
  {
    std::vector<bool> seen(n_tasks, false);
    std::size_t covered = 0;
    for (const auto& bin : bins)
      for (std::size_t t : bin) {
        HJSVD_ENSURE(t < n_tasks, "seeded bin references unknown task");
        HJSVD_ENSURE(!seen[t], "task seeded into more than one bin");
        seen[t] = true;
        ++covered;
      }
    HJSVD_ENSURE(covered == n_tasks, "seeded bins must cover every task");
  }

  // One wave at a time: later callers queue here, not inside the workers.
  std::lock_guard<std::mutex> run_lock(impl_->run_mu);

  const std::size_t workers = options.workers;
  const std::size_t width =
      options.total_width == 0 ? workers : options.total_width;

  std::vector<WorkerDeque> deques(workers);
  for (std::size_t w = 0; w < bins.size(); ++w) {
    double sum = 0.0;
    for (std::size_t t : bins[w]) {
      deques[w].tasks.push_back(t);
      sum += costs[t];
    }
    deques[w].remaining.store(sum, std::memory_order_relaxed);
  }

  PoolStats stats;
  stats.workers = workers;
  stats.tasks = n_tasks;
  stats.executed.assign(workers, 0);
  stats.stolen.assign(workers, 0);
  stats.busy_s.assign(workers, 0.0);
  stats.idle_s.assign(workers, 0.0);
  stats.occupancy.assign(n_tasks, 0);

  // Per-task exception slots: each is written by exactly one worker (the
  // one that ran the task), read below after the wave drains.
  std::vector<std::exception_ptr> errors(n_tasks);
  std::vector<std::uint64_t> nested(workers, 0);
  std::vector<std::uint64_t> granted(workers, 0);

  WaveState wv;
  wv.costs = &costs;
  wv.options = &options;
  wv.fn = &fn;
  wv.deques = &deques;
  wv.stats = &stats;
  wv.errors = &errors;
  wv.nested = &nested;
  wv.granted = &granted;
  wv.queued.store(n_tasks, std::memory_order_relaxed);
  wv.participants = workers;
  wv.width = width;
  wv.n_tasks = n_tasks;

  const auto wave_t0 = std::chrono::steady_clock::now();
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->wave = &wv;
    impl_->participants = workers;
    impl_->done_pending = workers;
    ++impl_->generation;
    impl_->cv.notify_all();
    impl_->done_cv.wait(lock, [&] { return impl_->done_pending == 0; });
    impl_->wave = nullptr;
    impl_->participants = 0;
  }
  stats.wall_s = seconds_since(wave_t0);

  for (std::size_t w = 0; w < workers; ++w) {
    stats.steals += stats.stolen[w];
    stats.nested_runs += nested[w];
    stats.helpers_granted += granted[w];
    const double idle = stats.wall_s - stats.busy_s[w];
    stats.idle_s[w] = idle > 0.0 ? idle : 0.0;
  }

  // Deterministic error surface: the lowest-index failure wins no matter
  // which worker observed it first.
  for (std::size_t t = 0; t < n_tasks; ++t)
    if (errors[t]) std::rethrow_exception(errors[t]);

  return stats;
}

PoolStats run_work_stealing(
    const std::vector<double>& costs,
    const std::vector<std::vector<std::size_t>>& bins,
    const WorkStealingOptions& options,
    const std::function<void(const PoolTaskInfo&)>& fn) {
  HJSVD_ENSURE(options.workers >= 1, "pool needs at least one worker");
  WorkStealingPool pool(options.workers);
  return pool.run(costs, bins, options, fn);
}

}  // namespace hjsvd

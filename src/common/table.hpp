// ASCII table and CSV emitters used by the benchmark harnesses to print the
// paper's tables/figures as aligned text plus machine-readable CSV.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace hjsvd {

/// A simple column-aligned ASCII table.  Cells are strings; numeric
/// formatting helpers live alongside (format_sci, format_fixed).
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Optional caption printed above the table.
  void set_caption(std::string caption) { caption_ = std::move(caption); }

  /// Renders the table (caption, header rule, rows) to a string.
  std::string to_string() const;

  /// Renders the same data as CSV (caption omitted, header included).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats x in scientific notation with `digits` significant digits,
/// e.g. 4.39e-03 — the style used in the paper's Table I.
std::string format_sci(double x, int digits = 3);

/// Fixed-point formatting with `digits` digits after the decimal point.
std::string format_fixed(double x, int digits = 3);

/// "12.3 ms" / "4.56 s" style human-friendly duration.
std::string format_duration(double seconds);

/// Writes `content` to `path`, throwing hjsvd::Error on failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace hjsvd

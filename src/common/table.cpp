#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace hjsvd {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  HJSVD_ENSURE(!headers_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  HJSVD_ENSURE(cells.size() == headers_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!caption_.empty()) os << caption_ << '\n';
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string AsciiTable::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << quote(row[c]);
    os << '\n';
  }
  return os.str();
}

std::string format_sci(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", std::max(0, digits - 1), x);
  return buf;
}

std::string format_fixed(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (!std::isfinite(seconds)) return "inf";
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  }
  return buf;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  HJSVD_ENSURE(out.good(), "cannot open output file: " + path);
  out << content;
  HJSVD_ENSURE(out.good(), "failed writing output file: " + path);
}

}  // namespace hjsvd

// Tiny command-line flag parser for the example and benchmark binaries.
//
// Supported syntax: --name value, --name=value, and bare --flag (boolean).
// Unknown flags raise an error listing the registered options.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hjsvd {

/// Declarative command-line parser: register options, then parse().
class Cli {
 public:
  explicit Cli(std::string program_description);

  /// Registers an option with a default value and help text.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv; exits(0) printing help on --help.  Throws hjsvd::Error on
  /// unknown options or missing values.
  void parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Parses comma-separated integers, e.g. "128,256,512".
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

  std::string help() const;

 private:
  struct Option {
    std::string default_value;
    std::string value;
    std::string help;
  };
  std::string description_;
  std::map<std::string, Option> options_;
};

}  // namespace hjsvd

#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

__extension__ typedef unsigned __int128 hjsvd_u128;

namespace hjsvd {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::gaussian() {
  // Box–Muller on two fresh uniforms; u1 kept away from zero.
  const double u1 = (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
  HJSVD_ENSURE(bound > 0, "bounded() requires a positive bound");
  // Lemire's nearly-divisionless method.
  const std::uint64_t x = next_u64();
  hjsvd_u128 m = static_cast<hjsvd_u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<hjsvd_u128>(next_u64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace hjsvd

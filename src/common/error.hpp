// Error handling primitives shared by every hjsvd module.
//
// Recoverable misuse of the public API (bad dimensions, invalid
// configuration) throws hjsvd::Error via HJSVD_ENSURE.  Internal invariant
// violations use HJSVD_ASSERT, which also throws so that tests can observe
// them, but is compiled out in HJSVD_NDEBUG_ASSERT builds.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hjsvd {

/// Exception type thrown on precondition / invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const std::string& msg,
                               const std::source_location& loc) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line();
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace hjsvd

/// Validate a caller-facing precondition; throws hjsvd::Error on failure.
#define HJSVD_ENSURE(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::hjsvd::detail::raise("precondition", #cond, (msg),           \
                             std::source_location::current());        \
    }                                                                 \
  } while (false)

/// Internal invariant check.  Kept on by default (cheap relative to the
/// numerical kernels it guards); define HJSVD_NDEBUG_ASSERT to strip.
#ifdef HJSVD_NDEBUG_ASSERT
#define HJSVD_ASSERT(cond, msg) ((void)0)
#else
#define HJSVD_ASSERT(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::hjsvd::detail::raise("invariant", #cond, (msg),              \
                             std::source_location::current());        \
    }                                                                 \
  } while (false)
#endif

#include "common/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/error.hpp"

namespace hjsvd {

Cli::Cli(std::string program_description)
    : description_(std::move(program_description)) {}

void Cli::add_option(const std::string& name, const std::string& default_value,
                     const std::string& help) {
  HJSVD_ENSURE(!options_.count(name), "duplicate option: " + name);
  options_[name] = Option{default_value, default_value, help};
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help();
      std::exit(0);
    }
    HJSVD_ENSURE(arg.rfind("--", 0) == 0, "expected --option, got: " + arg);
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    auto it = options_.find(arg);
    HJSVD_ENSURE(it != options_.end(), "unknown option --" + arg + "\n" + help());
    if (eq == std::string::npos) {
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // bare boolean flag
      }
    }
    it->second.value = value;
  }
}

std::string Cli::get(const std::string& name) const {
  auto it = options_.find(name);
  HJSVD_ENSURE(it != options_.end(), "option not registered: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t result = std::stoll(v, &pos);
    HJSVD_ENSURE(pos == v.size(), "trailing characters in integer: " + v);
    return result;
  } catch (const std::logic_error&) {
    throw Error("option --" + name + " expects an integer, got: " + v);
  }
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double result = std::stod(v, &pos);
    HJSVD_ENSURE(pos == v.size(), "trailing characters in number: " + v);
    return result;
  } catch (const std::logic_error&) {
    throw Error("option --" + name + " expects a number, got: " + v);
  }
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("option --" + name + " expects a boolean, got: " + v);
}

std::vector<std::int64_t> Cli::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::istringstream is(get(name));
  std::string piece;
  while (std::getline(is, piece, ',')) {
    if (piece.empty()) continue;
    try {
      out.push_back(std::stoll(piece));
    } catch (const std::logic_error&) {
      throw Error("option --" + name + " expects comma-separated integers");
    }
  }
  return out;
}

std::string Cli::help() const {
  std::ostringstream os;
  os << description_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name << " (default: " << opt.default_value << ")\n      "
       << opt.help << '\n';
  }
  return os.str();
}

}  // namespace hjsvd

#include "reportgen/runner.hpp"

#include <sstream>
#include <thread>

#include "baselines/golub_kahan.hpp"
#include "baselines/parallel_hestenes.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "linalg/generate.hpp"

namespace hjsvd::report {

Matrix experiment_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(m) << 32) ^ n);
  return random_gaussian(m, n, rng);
}

double time_best(const std::function<void()>& fn, double min_seconds,
                 std::size_t max_reps) {
  double best = 1e300;
  double spent = 0.0;
  for (std::size_t rep = 0; rep < max_reps; ++rep) {
    Timer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
    spent += s;
    if (spent >= min_seconds) break;
  }
  return best;
}

double golub_kahan_seconds(const Matrix& a) {
  return time_best([&] { (void)golub_kahan_svd(a); });
}

double parallel_hestenes_seconds(const Matrix& a) {
  HestenesConfig cfg;  // 6 sweeps, values only — the paper's protocol
  return time_best([&] { (void)parallel_hestenes_svd(a, cfg); });
}

std::string host_description() {
  std::ostringstream os;
  os << "host: " << std::thread::hardware_concurrency() << " hardware threads";
#if defined(__VERSION__)
  os << ", gcc/clang " << __VERSION__;
#endif
#if defined(_OPENMP)
  os << ", OpenMP " << _OPENMP;
#endif
  return os.str();
}

}  // namespace hjsvd::report

// Shared plumbing for the benchmark harnesses that regenerate the paper's
// tables and figures: deterministic workload generation, robust wall-clock
// timing of the software baselines, and environment reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "linalg/matrix.hpp"

namespace hjsvd::report {

/// Deterministic gaussian test matrix for experiment (m, n); the seed mixes
/// the dimensions so every cell of a sweep gets distinct, repeatable data
/// (the paper uses "randomly generated datasets").
Matrix experiment_matrix(std::size_t m, std::size_t n,
                         std::uint64_t seed = 2014);

/// Runs `fn` repeatedly until at least `min_seconds` have elapsed (capped at
/// `max_reps`) and returns the best single-run time — the usual protocol for
/// stable wall-clock numbers on a shared machine.
double time_best(const std::function<void()>& fn, double min_seconds = 0.2,
                 std::size_t max_reps = 5);

/// Wall-clock seconds of the Golub-Kahan baseline (singular values only,
/// matching `sigma = svd(A)` in the paper's MATLAB benchmark).
double golub_kahan_seconds(const Matrix& a);

/// Wall-clock seconds of the OpenMP group-parallel Hestenes baseline (the
/// GPU-like comparator), 6 sweeps, values only.
double parallel_hestenes_seconds(const Matrix& a);

/// One-line description of the host (threads, compiler) for report headers.
std::string host_description();

}  // namespace hjsvd::report

// Fixed-point arithmetic substrate.
//
// The prior FPGA Hestenes-Jacobi design the paper improves on ([11],
// Ledesma-Carrillo et al.) computes in fixed point, which limits both the
// dynamic range and the analyzable matrix sizes; the paper's choice of
// IEEE-754 double precision is motivated by exactly this ("to provide a
// wider dynamic range", Sections I and V.B).  This module provides a
// bit-faithful simulation of Qm.f fixed-point arithmetic (two's complement,
// round-to-nearest, saturation) as an arithmetic policy pluggable into the
// same SVD kernels, so the dynamic-range failure is demonstrable
// (bench_ablation_fixedpoint).
//
// Representation: values are kept as doubles constrained to the Q-grid
// (integer multiples of 2^-frac_bits within the saturation range), which is
// exact as long as total_bits <= 53 — true for every hardware-realistic
// format.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace hjsvd::fp {

/// A Qm.f two's-complement fixed-point format: total_bits = 1 (sign) +
/// integer_bits + frac_bits.
struct FixedFormat {
  int integer_bits = 15;
  int frac_bits = 16;

  int total_bits() const { return 1 + integer_bits + frac_bits; }
  /// Largest representable value.
  double max_value() const;
  /// Quantization step 2^-frac_bits.
  double resolution() const;
};

/// Event counters for a fixed-point run: saturations are the signature of a
/// dynamic-range failure, underflows of a resolution failure.
struct FixedStats {
  std::uint64_t operations = 0;
  std::uint64_t saturations = 0;   // clamped to +-max
  std::uint64_t underflows = 0;    // non-zero value quantized to zero
};

/// Quantizes x onto the format's grid (round to nearest, saturate).
double fixed_quantize(double x, const FixedFormat& fmt,
                      FixedStats* stats = nullptr);

/// Arithmetic policy: every operation result is quantized onto the Q-grid,
/// exactly as a fixed-point datapath of that width would behave (a single
/// multiplier output register, no extended accumulators).
class FixedOps {
 public:
  FixedOps(const FixedFormat& fmt, FixedStats& stats)
      : fmt_(&fmt), stats_(&stats) {}

  double add(double a, double b) const { return q(a + b); }
  double sub(double a, double b) const { return q(a - b); }
  double mul(double a, double b) const { return q(a * b); }
  double div(double a, double b) const { return q(a / b); }
  double sqrt(double a) const;

 private:
  double q(double x) const { return fixed_quantize(x, *fmt_, stats_); }

  const FixedFormat* fmt_;
  FixedStats* stats_;
};

template <class Ops>
struct OpsTraits;
template <>
struct OpsTraits<FixedOps> {
  static constexpr bool parallel_safe = false;  // shared stats counters
};

}  // namespace hjsvd::fp

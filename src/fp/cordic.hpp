// CORDIC (COordinate Rotation DIgital Computer) engine.
//
// Section V.B: CORDIC is "a popular choice in the research literature" for
// computing Jacobi rotations in hardware, because it reduces trigonometry
// to shift-and-add iterations — but it is efficient only in *fixed point*;
// a floating-point CORDIC must realign operands every iteration, which is
// why the paper instead evaluates the closed forms of eqs. (8)-(10) on
// pipelined floating-point cores.  This module implements the classic
// fixed-point CORDIC (vectoring and rotation modes, Q2.61 internal state)
// so the trade-off is demonstrable (bench_ablation_cordic): accuracy scales
// as 2^-iterations, and reaching double precision needs ~60 iterations.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace hjsvd::fp {

struct CordicConfig {
  /// Shift-add iterations; accuracy ~ 2^-iterations radians.
  int iterations = 40;
};

/// Gain of an `iterations`-step CORDIC: prod sqrt(1 + 2^-2i).
double cordic_gain(int iterations);

/// Vectoring mode: rotates (x, y) onto the positive x-axis.
/// Returns magnitude = sqrt(x^2 + y^2) (gain-compensated) and
/// angle = atan2(y, x).
struct CordicVectoring {
  double magnitude = 0.0;
  double angle = 0.0;
};
CordicVectoring cordic_vectoring(double x, double y,
                                 const CordicConfig& cfg = {});

/// Rotation mode: rotates (x, y) by `angle` (|angle| <= ~1.74 rad, the
/// CORDIC convergence domain); gain-compensated.
struct CordicVec {
  double x = 0.0;
  double y = 0.0;
};
CordicVec cordic_rotation(double x, double y, double angle,
                          const CordicConfig& cfg = {});

/// Convenience: (cos, sin) of an angle within the convergence domain.
CordicVec cordic_cos_sin(double angle, const CordicConfig& cfg = {});

/// Jacobi rotation parameters computed the CORDIC way, as a classic
/// two-sided/one-sided rotation unit would: vectoring extracts
/// 2*theta = atan(2*cov / (norm_jj - norm_ii)), the angle is halved in
/// fixed point, and rotation mode produces (cos, sin).
struct CordicRotation {
  double cos = 1.0;
  double sin = 0.0;
  double theta = 0.0;
};
CordicRotation cordic_jacobi_params(double norm_jj, double norm_ii,
                                    double cov, const CordicConfig& cfg = {});

}  // namespace hjsvd::fp

// Arithmetic policies for the numerical kernels.
//
// Every kernel in src/svd is templated on an Ops policy so a single code
// path can run in three modes:
//   NativeOps   — host FPU doubles (fast; used for large experiments),
//   SoftOps     — bit-accurate soft-float (models the Coregen cores;
//                 used by the fidelity tests),
//   CountingOps — native arithmetic plus operation counting (ablations).
//
// The differential tests in tests/fp assert that NativeOps and SoftOps are
// bit-identical on the operations the architecture performs, which is what
// justifies running the big sweeps with NativeOps (DESIGN.md §6).
#pragma once

#include <cmath>

#include "fp/latency.hpp"
#include "fp/softfloat.hpp"

namespace hjsvd::fp {

/// Host-FPU arithmetic (IEEE-754 binary64, round-to-nearest-even).
struct NativeOps {
  static double add(double a, double b) { return a + b; }
  static double sub(double a, double b) { return a - b; }
  static double mul(double a, double b) { return a * b; }
  static double div(double a, double b) { return a / b; }
  static double sqrt(double a) { return std::sqrt(a); }
};

/// Bit-accurate software model of the hardware floating-point cores.
struct SoftOps {
  static double add(double a, double b) { return sf_add(a, b); }
  static double sub(double a, double b) { return sf_sub(a, b); }
  static double mul(double a, double b) { return sf_mul(a, b); }
  static double div(double a, double b) { return sf_div(a, b); }
  static double sqrt(double a) { return sf_sqrt(a); }
};

/// Host-FPU binary32 arithmetic for the mixed-precision float phase.
struct NativeOps32 {
  static float add(float a, float b) { return a + b; }
  static float sub(float a, float b) { return a - b; }
  static float mul(float a, float b) { return a * b; }
  static float div(float a, float b) { return a / b; }
  static float sqrt(float a) { return std::sqrt(a); }
};

/// Bit-accurate binary32 soft-float; validates the float phase the same way
/// SoftOps validates the double path.
struct SoftOps32 {
  static float add(float a, float b) { return sf32_add(a, b); }
  static float sub(float a, float b) { return sf32_sub(a, b); }
  static float mul(float a, float b) { return sf32_mul(a, b); }
  static float div(float a, float b) { return sf32_div(a, b); }
  static float sqrt(float a) { return sf32_sqrt(a); }
};

/// Native arithmetic that tallies operation counts into a caller-provided
/// OpCounts instance (stateful, therefore methods are non-static).
class CountingOps {
 public:
  explicit CountingOps(OpCounts& counts) : counts_(&counts) {}

  double add(double a, double b) const { ++counts_->add; return a + b; }
  double sub(double a, double b) const { ++counts_->sub; return a - b; }
  double mul(double a, double b) const { ++counts_->mul; return a * b; }
  double div(double a, double b) const { ++counts_->div; return a / b; }
  double sqrt(double a) const { ++counts_->sqrt; return std::sqrt(a); }

 private:
  OpCounts* counts_;
};

/// Whether kernels may invoke the policy concurrently from OpenMP threads.
/// CountingOps mutates shared counters and is therefore serial-only.
template <class Ops>
struct OpsTraits {
  static constexpr bool parallel_safe = true;
};

template <>
struct OpsTraits<CountingOps> {
  static constexpr bool parallel_safe = false;
};

}  // namespace hjsvd::fp

#include "fp/fixed.hpp"

#include <cmath>

namespace hjsvd::fp {

double FixedFormat::max_value() const {
  // (2^(total-1) - 1) * 2^-frac
  return (std::ldexp(1.0, total_bits() - 1) - 1.0) *
         std::ldexp(1.0, -frac_bits);
}

double FixedFormat::resolution() const { return std::ldexp(1.0, -frac_bits); }

double fixed_quantize(double x, const FixedFormat& fmt, FixedStats* stats) {
  HJSVD_ENSURE(fmt.total_bits() >= 2 && fmt.total_bits() <= 53,
               "fixed-point format must have 2..53 bits");
  if (stats != nullptr) ++stats->operations;
  if (std::isnan(x)) x = 0.0;  // a hardware datapath has no NaN; define as 0
  const double scale = std::ldexp(1.0, fmt.frac_bits);
  double scaled = std::nearbyint(x * scale);
  const double limit = std::ldexp(1.0, fmt.total_bits() - 1) - 1.0;
  if (scaled > limit) {
    scaled = limit;
    if (stats != nullptr) ++stats->saturations;
  } else if (scaled < -limit - 1.0) {
    scaled = -limit - 1.0;
    if (stats != nullptr) ++stats->saturations;
  } else if (scaled == 0.0 && x != 0.0) {
    if (stats != nullptr) ++stats->underflows;
  }
  return scaled / scale;
}

double FixedOps::sqrt(double a) const {
  if (a <= 0.0) return 0.0;  // hardware isqrt of non-positive input
  return q(std::sqrt(a));
}

}  // namespace hjsvd::fp

#include "fp/cordic.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace hjsvd::fp {
namespace {

// Internal fixed-point format: Q2.61 two's complement in int64 (range
// (-4, 4), resolution 2^-61) — enough headroom for the CORDIC gain
// (~1.6468) times sqrt(2) on unit-normalized inputs, and for angles up to
// pi.
constexpr int kFracBits = 61;
constexpr int kMaxIterations = 61;

std::int64_t to_fixed(double x) {
  return static_cast<std::int64_t>(std::llround(std::ldexp(x, kFracBits)));
}

double from_fixed(std::int64_t x) {
  return std::ldexp(static_cast<double>(x), -kFracBits);
}

/// atan(2^-i) table in Q2.61, built once.
const std::array<std::int64_t, kMaxIterations>& atan_table() {
  static const auto table = [] {
    std::array<std::int64_t, kMaxIterations> t{};
    for (int i = 0; i < kMaxIterations; ++i)
      t[i] = to_fixed(std::atan(std::ldexp(1.0, -i)));
    return t;
  }();
  return table;
}

void check_iterations(const CordicConfig& cfg) {
  HJSVD_ENSURE(cfg.iterations >= 1 && cfg.iterations <= kMaxIterations,
               "CORDIC iterations must be in [1, 61]");
}

struct State {
  std::int64_t x, y, z;
};

/// Core shift-add loop.  Vectoring drives y to 0 (d from sign of y);
/// rotation drives z to 0 (d from sign of z).
State iterate(State s, int iterations, bool vectoring) {
  const auto& atans = atan_table();
  for (int i = 0; i < iterations; ++i) {
    const bool positive = vectoring ? (s.y < 0) : (s.z >= 0);
    const std::int64_t d = positive ? 1 : -1;
    const std::int64_t xs = s.x >> i;
    const std::int64_t ys = s.y >> i;
    const State next{s.x - d * ys, s.y + d * xs, s.z - d * atans[i]};
    s = next;
  }
  return s;
}

}  // namespace

double cordic_gain(int iterations) {
  double k = 1.0;
  for (int i = 0; i < iterations; ++i)
    k *= std::sqrt(1.0 + std::ldexp(1.0, -2 * i));
  return k;
}

CordicVectoring cordic_vectoring(double x, double y, const CordicConfig& cfg) {
  check_iterations(cfg);
  CordicVectoring out;
  if (x == 0.0 && y == 0.0) return out;
  // Normalize into the fixed-point range; the magnitude scales back out.
  const double scale = std::max(std::abs(x), std::abs(y));
  double xn = x / scale, yn = y / scale;
  // Pre-rotate into the right half plane (CORDIC converges for |angle| <=
  // ~1.74 rad only).
  double angle0 = 0.0;
  if (xn < 0.0) {
    if (yn >= 0.0) {  // quadrant II: rotate by -90 deg, account +90
      const double t = xn;
      xn = yn;
      yn = -t;
      angle0 = M_PI / 2;
    } else {  // quadrant III
      const double t = xn;
      xn = -yn;
      yn = t;
      angle0 = -M_PI / 2;
    }
  }
  State s{to_fixed(xn), to_fixed(yn), 0};
  s = iterate(s, cfg.iterations, /*vectoring=*/true);
  out.magnitude = from_fixed(s.x) * scale / cordic_gain(cfg.iterations);
  out.angle = angle0 + from_fixed(s.z);
  return out;
}

CordicVec cordic_rotation(double x, double y, double angle,
                          const CordicConfig& cfg) {
  check_iterations(cfg);
  HJSVD_ENSURE(std::abs(angle) <= 1.75,
               "angle outside the CORDIC convergence domain");
  const double scale = std::max({std::abs(x), std::abs(y), 1e-300});
  State s{to_fixed(x / scale), to_fixed(y / scale), to_fixed(angle)};
  s = iterate(s, cfg.iterations, /*vectoring=*/false);
  const double k = cordic_gain(cfg.iterations);
  return CordicVec{from_fixed(s.x) * scale / k, from_fixed(s.y) * scale / k};
}

CordicVec cordic_cos_sin(double angle, const CordicConfig& cfg) {
  return cordic_rotation(1.0, 0.0, angle, cfg);
}

CordicRotation cordic_jacobi_params(double norm_jj, double norm_ii,
                                    double cov, const CordicConfig& cfg) {
  check_iterations(cfg);
  CordicRotation out;
  if (cov == 0.0) return out;
  const double diff = norm_jj - norm_ii;
  // 2*theta = atan(2c / diff), principal branch (|2 theta| <= pi/2): use
  // |diff| in vectoring (keeps the angle in (-pi/2, pi/2)) and restore the
  // sign analytically — sign(theta) = sign(diff * cov), matching the
  // closed-form's small-angle branch.
  const auto vec = cordic_vectoring(std::abs(diff), 2.0 * cov, cfg);
  double two_theta = vec.angle;
  if (diff < 0.0) two_theta = -two_theta;
  out.theta = 0.5 * two_theta;  // exact halving (sign-magnitude in double)
  const auto cs = cordic_cos_sin(out.theta, cfg);
  out.cos = cs.x;
  out.sin = cs.y;
  return out;
}

}  // namespace hjsvd::fp

// Latency/throughput metadata of the hardware floating-point cores.
//
// The paper instantiates Xilinx Coregen IEEE-754 double-precision operators
// "configured with default latencies as 9, 14, 57, 57 clock cycles for
// multiplier, adder or subtractor, divider and square-root calculator
// respectively" (Section VI.A), all fully pipelined (initiation interval 1).
#pragma once

#include <cstdint>

namespace hjsvd::fp {

/// Kinds of floating-point cores instantiated by the architecture.
enum class OpKind { kMul, kAdd, kSub, kDiv, kSqrt };

/// Pipeline latencies (in clock cycles) of the double-precision cores.
struct CoreLatencies {
  std::uint32_t mul = 9;
  std::uint32_t add = 14;   // the adder core also implements subtraction
  std::uint32_t div = 57;
  std::uint32_t sqrt = 57;

  constexpr std::uint32_t of(OpKind k) const {
    switch (k) {
      case OpKind::kMul: return mul;
      case OpKind::kAdd:
      case OpKind::kSub: return add;
      case OpKind::kDiv: return div;
      case OpKind::kSqrt: return sqrt;
    }
    return 0;  // unreachable
  }
};

/// Counts of executed floating-point operations, used by the ablation
/// benchmarks to compare the modified (D-caching) algorithm against the
/// plain recomputing Hestenes-Jacobi.
struct OpCounts {
  std::uint64_t mul = 0;
  std::uint64_t add = 0;
  std::uint64_t sub = 0;
  std::uint64_t div = 0;
  std::uint64_t sqrt = 0;

  std::uint64_t total() const { return mul + add + sub + div + sqrt; }

  OpCounts& operator+=(const OpCounts& o) {
    mul += o.mul;
    add += o.add;
    sub += o.sub;
    div += o.div;
    sqrt += o.sqrt;
    return *this;
  }
};

}  // namespace hjsvd::fp

#include "fp/softfloat.hpp"

#include <bit>
#include <utility>

#include "common/error.hpp"

namespace hjsvd::fp {
namespace {

using u64 = std::uint64_t;
__extension__ typedef unsigned __int128 u128;

constexpr u64 kSignMask = 0x8000'0000'0000'0000ULL;
constexpr u64 kFracMask = 0x000F'FFFF'FFFF'FFFFULL;
constexpr int kFracBits = 52;
constexpr int kExpMax = 0x7FF;
constexpr u64 kQuietBit = 1ULL << 51;
constexpr u64 kCanonicalNan = 0x7FF8'0000'0000'0000ULL;
constexpr u64 kInf = static_cast<u64>(kExpMax) << kFracBits;

int exp_of(u64 a) { return static_cast<int>((a >> kFracBits) & kExpMax); }
u64 frac_of(u64 a) { return a & kFracMask; }
u64 sign_of(u64 a) { return a & kSignMask; }

bool is_nan(u64 a) { return exp_of(a) == kExpMax && frac_of(a) != 0; }
bool is_inf(u64 a) { return exp_of(a) == kExpMax && frac_of(a) == 0; }
bool is_zero(u64 a) { return (a & ~kSignMask) == 0; }

/// Returns an input NaN, quieted; or the canonical qNaN for invalid ops.
u64 propagate_nan(u64 a, u64 b) {
  if (is_nan(a)) return a | kQuietBit;
  if (is_nan(b)) return b | kQuietBit;
  return kCanonicalNan;
}

/// x >> n with all shifted-out bits ORed ("jammed") into the result LSB.
u64 shift_right_jam64(u64 x, int n) {
  if (n <= 0) return x;
  if (n >= 64) return x != 0 ? 1 : 0;
  return (x >> n) | ((x << (64 - n)) != 0 ? 1 : 0);
}

u64 shift_right_jam128(u128 x, int n) {
  HJSVD_ASSERT(n > 0 && n < 128, "jam128 shift out of range");
  const u128 shifted = x >> n;
  const bool lost = (x << (128 - n)) != 0;
  HJSVD_ASSERT((shifted >> 64) == 0, "jam128 result must fit in 64 bits");
  return static_cast<u64>(shifted) | (lost ? 1 : 0);
}

/// Rounds (to nearest, ties to even) and packs a result.
///
/// Working convention: the value represented is z * 2^(be - 1085).  When the
/// result is a normal number, z has its leading 1 at bit 62 and `be` becomes
/// the biased exponent; the bottom 10 bits of z are rounding bits below the
/// 53-bit significand.  Callers may pass be == 1 with an unnormalized z
/// (leading 1 below bit 62), which encodes a subnormal.
u64 round_pack(u64 sign, int be, u64 z) {
  if (be <= 0) {
    // Denormalize into the be == 1 frame; value is preserved:
    // z * 2^(be-1085) == (z >> (1-be)) * 2^(1-1085), modulo sticky jamming.
    z = shift_right_jam64(z, 1 - be);
    be = 1;
  }
  const u64 round_bits = z & 0x3FF;
  z += 0x200;
  if (round_bits == 0x200) z &= ~(1ULL << 10);  // tie: round to even
  u64 sig53 = z >> 10;
  if (sig53 >= (1ULL << 53)) {  // rounding carried out of the significand
    sig53 >>= 1;
    ++be;
  }
  if (sig53 == 0) return sign;  // rounded to (signed) zero
  if ((sig53 >> kFracBits) == 0) {
    // No implicit bit: subnormal.  Only representable in the be == 1 frame
    // (exponent field 0 encodes frac * 2^(1-1075)).
    HJSVD_ASSERT(be == 1, "unnormalized significand outside subnormal frame");
    return sign | sig53;
  }
  if (be >= kExpMax) return sign | kInf;  // overflow
  return sign | (static_cast<u64>(be) << kFracBits) | (sig53 & kFracMask);
}

/// Unpacks a finite, non-zero operand into (effective biased exponent,
/// significand with implicit bit, normalized into [2^52, 2^53)).  Subnormals
/// get an effective exponent below 1.
void unpack_normalize(u64 a, int& exp, u64& sig) {
  exp = exp_of(a);
  sig = frac_of(a);
  if (exp == 0) {
    const int shift = std::countl_zero(sig) - 11;
    sig <<= shift;
    exp = 1 - shift;
  } else {
    sig |= 1ULL << kFracBits;
  }
}

/// Unpacks into the working frame used by add/sub: significand shifted so a
/// normal number's implicit bit sits at position 62; subnormals keep their
/// natural (unnormalized) position with effective exponent 1.
void unpack_working(u64 a, int& exp, u64& z) {
  exp = exp_of(a);
  z = frac_of(a);
  if (exp != 0) {
    z |= 1ULL << kFracBits;
  } else {
    exp = 1;
  }
  z <<= 10;
}

/// Magnitude comparison of finite operands (ignores sign).
bool mag_lt(u64 a, u64 b) { return (a & ~kSignMask) < (b & ~kSignMask); }

/// Magnitude addition: |a| + |b| with the given result sign.
u64 add_mags(u64 a, u64 b, u64 sign) {
  int ea, eb;
  u64 za, zb;
  unpack_working(a, ea, za);
  unpack_working(b, eb, zb);
  if (ea < eb) {
    std::swap(ea, eb);
    std::swap(za, zb);
  }
  zb = shift_right_jam64(zb, ea - eb);
  u64 sum = za + zb;
  int be = ea;
  if (sum & (1ULL << 63)) {
    sum = shift_right_jam64(sum, 1);
    ++be;
  }
  // sum may be unnormalized only when both inputs were subnormal (be == 1),
  // which round_pack encodes directly as a subnormal.
  return round_pack(sign, be, sum);
}

/// Magnitude subtraction: |a| - |b| where |a| > |b|; carries a's sign.
u64 sub_mags(u64 a, u64 b) {
  if (mag_lt(a, b)) std::swap(a, b);
  if ((a & ~kSignMask) == (b & ~kSignMask)) return 0;  // exact zero is +0
  const u64 sign = sign_of(a);
  int ea, eb;
  u64 za, zb;
  unpack_working(a, ea, za);
  unpack_working(b, eb, zb);
  zb = shift_right_jam64(zb, ea - eb);
  u64 diff = za - zb;
  int be = ea;
  HJSVD_ASSERT(diff != 0, "exact cancellation handled by caller");
  // Normalize (leading 1 to bit 62), but never below the subnormal frame.
  const int lz = std::countl_zero(diff) - 1;
  const int shift = lz < (be - 1) ? lz : (be - 1);
  diff <<= shift;
  be -= shift;
  return round_pack(sign, be, diff);
}

}  // namespace

bool f64_is_nan(u64 a) { return is_nan(a); }
bool f64_is_inf(u64 a) { return is_inf(a); }
bool f64_is_zero(u64 a) { return is_zero(a); }
bool f64_is_subnormal(u64 a) { return exp_of(a) == 0 && frac_of(a) != 0; }

u64 f64_add(u64 a, u64 b) {
  if (is_nan(a) || is_nan(b)) return propagate_nan(a, b);
  if (is_inf(a)) {
    if (is_inf(b) && sign_of(a) != sign_of(b)) return kCanonicalNan;  // inf-inf
    return a;
  }
  if (is_inf(b)) return b;
  if (is_zero(a) && is_zero(b)) {
    // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed signs give +0 under RNE.
    return sign_of(a) & sign_of(b);
  }
  if (is_zero(a)) return b;
  if (is_zero(b)) return a;
  if (sign_of(a) == sign_of(b)) return add_mags(a, b, sign_of(a));
  return sub_mags(a, b);
}

u64 f64_sub(u64 a, u64 b) { return f64_add(a, b ^ kSignMask); }

u64 f64_mul(u64 a, u64 b) {
  if (is_nan(a) || is_nan(b)) return propagate_nan(a, b);
  const u64 sign = sign_of(a) ^ sign_of(b);
  if (is_inf(a) || is_inf(b)) {
    if (is_zero(a) || is_zero(b)) return kCanonicalNan;  // inf * 0
    return sign | kInf;
  }
  if (is_zero(a) || is_zero(b)) return sign;
  int ea, eb;
  u64 sa, sb;
  unpack_normalize(a, ea, sa);
  unpack_normalize(b, eb, sb);
  const u128 p = static_cast<u128>(sa) * sb;  // in [2^104, 2^106)
  int be;
  u64 z;
  if ((p >> 105) != 0) {
    z = shift_right_jam128(p, 43);
    be = ea + eb - 1022;
  } else {
    z = shift_right_jam128(p, 42);
    be = ea + eb - 1023;
  }
  return round_pack(sign, be, z);
}

u64 f64_div(u64 a, u64 b) {
  if (is_nan(a) || is_nan(b)) return propagate_nan(a, b);
  const u64 sign = sign_of(a) ^ sign_of(b);
  if (is_inf(a)) {
    if (is_inf(b)) return kCanonicalNan;  // inf / inf
    return sign | kInf;
  }
  if (is_inf(b)) return sign;  // finite / inf = signed 0
  if (is_zero(b)) {
    if (is_zero(a)) return kCanonicalNan;  // 0 / 0
    return sign | kInf;                    // x / 0 = inf
  }
  if (is_zero(a)) return sign;
  int ea, eb;
  u64 sa, sb;
  unpack_normalize(a, ea, sa);
  unpack_normalize(b, eb, sb);
  int be;
  u128 n;
  if (sa >= sb) {
    n = static_cast<u128>(sa) << 62;  // quotient in [2^62, 2^63)
    be = ea - eb + 1023;
  } else {
    n = static_cast<u128>(sa) << 63;  // quotient in (2^62, 2^63)
    be = ea - eb + 1022;
  }
  u64 q = static_cast<u64>(n / sb);
  const u128 r = n - static_cast<u128>(q) * sb;
  if (r != 0) q |= 1;  // sticky
  HJSVD_ASSERT((q >> 62) == 1, "quotient must be normalized at bit 62");
  return round_pack(sign, be, q);
}

u64 f64_sqrt(u64 a) {
  if (is_nan(a)) return a | kQuietBit;
  if (is_zero(a)) return a;              // sqrt(+-0) = +-0
  if (sign_of(a)) return kCanonicalNan;  // sqrt of negative
  if (is_inf(a)) return a;
  int ea;
  u64 sa;
  unpack_normalize(a, ea, sa);
  // value = sa * 2^t with t = ea - 1075; force t even so sqrt halves it.
  int t = ea - 1075;
  u128 x = sa;
  if (t & 1) {
    x <<= 1;
    t -= 1;
  }
  // S = floor(sqrt(x << 72)): x<<72 in [2^124, 2^126) => S in [2^62, 2^63),
  // and sqrt(value) = S * 2^(t/2 - 36) exactly up to the remainder.
  x <<= 72;
  u128 rem = 0, root = 0;
  for (int shift = 126; shift >= 0; shift -= 2) {
    rem = (rem << 2) | ((x >> shift) & 0x3);
    root <<= 1;
    const u128 trial = (root << 1) | 1;
    if (rem >= trial) {
      rem -= trial;
      root |= 1;
    }
  }
  u64 z = static_cast<u64>(root);
  HJSVD_ASSERT((z >> 62) == 1, "sqrt significand must be normalized");
  if (rem != 0) z |= 1;  // sticky
  // round_pack expects z * 2^(be - 1085); here value = z * 2^(t/2 - 36).
  return round_pack(0, t / 2 - 36 + 1085, z);
}

// --- binary32 -----------------------------------------------------------
//
// Same structure as the binary64 path above, with narrower frames: the
// working significand carries its leading 1 at bit 30 of a u32 with 7
// rounding bits below the 24-bit significand, and mul/div/sqrt run their
// wide arithmetic in u64 instead of u128.

namespace {

using u32 = std::uint32_t;

constexpr u32 kSignMask32 = 0x8000'0000U;
constexpr u32 kFracMask32 = 0x007F'FFFFU;
constexpr int kFracBits32 = 23;
constexpr int kExpMax32 = 0xFF;
constexpr u32 kQuietBit32 = 1U << 22;
constexpr u32 kCanonicalNan32 = 0x7FC0'0000U;
constexpr u32 kInf32 = static_cast<u32>(kExpMax32) << kFracBits32;

int exp_of32(u32 a) { return static_cast<int>((a >> kFracBits32) & kExpMax32); }
u32 frac_of32(u32 a) { return a & kFracMask32; }
u32 sign_of32(u32 a) { return a & kSignMask32; }

bool is_nan32(u32 a) { return exp_of32(a) == kExpMax32 && frac_of32(a) != 0; }
bool is_inf32(u32 a) { return exp_of32(a) == kExpMax32 && frac_of32(a) == 0; }
bool is_zero32(u32 a) { return (a & ~kSignMask32) == 0; }

u32 propagate_nan32(u32 a, u32 b) {
  if (is_nan32(a)) return a | kQuietBit32;
  if (is_nan32(b)) return b | kQuietBit32;
  return kCanonicalNan32;
}

u32 shift_right_jam32(u32 x, int n) {
  if (n <= 0) return x;
  if (n >= 32) return x != 0 ? 1 : 0;
  return (x >> n) | ((x << (32 - n)) != 0 ? 1 : 0);
}

u32 shift_right_jam64to32(u64 x, int n) {
  HJSVD_ASSERT(n > 0 && n < 64, "jam64to32 shift out of range");
  const u64 shifted = x >> n;
  const bool lost = (x << (64 - n)) != 0;
  HJSVD_ASSERT((shifted >> 32) == 0, "jam64to32 result must fit in 32 bits");
  return static_cast<u32>(shifted) | (lost ? 1 : 0);
}

/// Rounds (to nearest, ties to even) and packs a binary32 result.
///
/// Working convention: the value represented is z * 2^(be - 157).  When the
/// result is a normal number, z has its leading 1 at bit 30 and `be` becomes
/// the biased exponent; the bottom 7 bits of z are rounding bits below the
/// 24-bit significand.  Callers may pass be == 1 with an unnormalized z,
/// which encodes a subnormal.
u32 round_pack32(u32 sign, int be, u32 z) {
  if (be <= 0) {
    z = shift_right_jam32(z, 1 - be);
    be = 1;
  }
  const u32 round_bits = z & 0x7F;
  z += 0x40;
  if (round_bits == 0x40) z &= ~(1U << 7);  // tie: round to even
  u32 sig24 = z >> 7;
  if (sig24 >= (1U << 24)) {  // rounding carried out of the significand
    sig24 >>= 1;
    ++be;
  }
  if (sig24 == 0) return sign;  // rounded to (signed) zero
  if ((sig24 >> kFracBits32) == 0) {
    HJSVD_ASSERT(be == 1, "unnormalized significand outside subnormal frame");
    return sign | sig24;
  }
  if (be >= kExpMax32) return sign | kInf32;  // overflow
  return sign | (static_cast<u32>(be) << kFracBits32) | (sig24 & kFracMask32);
}

/// Unpacks a finite, non-zero operand into (effective biased exponent,
/// significand with implicit bit, normalized into [2^23, 2^24)).
void unpack_normalize32(u32 a, int& exp, u32& sig) {
  exp = exp_of32(a);
  sig = frac_of32(a);
  if (exp == 0) {
    const int shift = std::countl_zero(sig) - 8;
    sig <<= shift;
    exp = 1 - shift;
  } else {
    sig |= 1U << kFracBits32;
  }
}

/// Unpacks into the add/sub working frame: implicit bit at position 30;
/// subnormals keep their natural position with effective exponent 1.
void unpack_working32(u32 a, int& exp, u32& z) {
  exp = exp_of32(a);
  z = frac_of32(a);
  if (exp != 0) {
    z |= 1U << kFracBits32;
  } else {
    exp = 1;
  }
  z <<= 7;
}

bool mag_lt32(u32 a, u32 b) { return (a & ~kSignMask32) < (b & ~kSignMask32); }

u32 add_mags32(u32 a, u32 b, u32 sign) {
  int ea, eb;
  u32 za, zb;
  unpack_working32(a, ea, za);
  unpack_working32(b, eb, zb);
  if (ea < eb) {
    std::swap(ea, eb);
    std::swap(za, zb);
  }
  zb = shift_right_jam32(zb, ea - eb);
  u32 sum = za + zb;
  int be = ea;
  if (sum & (1U << 31)) {
    sum = shift_right_jam32(sum, 1);
    ++be;
  }
  return round_pack32(sign, be, sum);
}

u32 sub_mags32(u32 a, u32 b) {
  if (mag_lt32(a, b)) std::swap(a, b);
  if ((a & ~kSignMask32) == (b & ~kSignMask32)) return 0;  // exact zero is +0
  const u32 sign = sign_of32(a);
  int ea, eb;
  u32 za, zb;
  unpack_working32(a, ea, za);
  unpack_working32(b, eb, zb);
  zb = shift_right_jam32(zb, ea - eb);
  u32 diff = za - zb;
  int be = ea;
  HJSVD_ASSERT(diff != 0, "exact cancellation handled by caller");
  const int lz = std::countl_zero(diff) - 1;
  const int shift = lz < (be - 1) ? lz : (be - 1);
  diff <<= shift;
  be -= shift;
  return round_pack32(sign, be, diff);
}

}  // namespace

bool f32_is_nan(u32 a) { return is_nan32(a); }
bool f32_is_inf(u32 a) { return is_inf32(a); }
bool f32_is_zero(u32 a) { return is_zero32(a); }
bool f32_is_subnormal(u32 a) { return exp_of32(a) == 0 && frac_of32(a) != 0; }

u32 f32_add(u32 a, u32 b) {
  if (is_nan32(a) || is_nan32(b)) return propagate_nan32(a, b);
  if (is_inf32(a)) {
    if (is_inf32(b) && sign_of32(a) != sign_of32(b)) return kCanonicalNan32;
    return a;
  }
  if (is_inf32(b)) return b;
  if (is_zero32(a) && is_zero32(b)) return sign_of32(a) & sign_of32(b);
  if (is_zero32(a)) return b;
  if (is_zero32(b)) return a;
  if (sign_of32(a) == sign_of32(b)) return add_mags32(a, b, sign_of32(a));
  return sub_mags32(a, b);
}

u32 f32_sub(u32 a, u32 b) { return f32_add(a, b ^ kSignMask32); }

u32 f32_mul(u32 a, u32 b) {
  if (is_nan32(a) || is_nan32(b)) return propagate_nan32(a, b);
  const u32 sign = sign_of32(a) ^ sign_of32(b);
  if (is_inf32(a) || is_inf32(b)) {
    if (is_zero32(a) || is_zero32(b)) return kCanonicalNan32;  // inf * 0
    return sign | kInf32;
  }
  if (is_zero32(a) || is_zero32(b)) return sign;
  int ea, eb;
  u32 sa, sb;
  unpack_normalize32(a, ea, sa);
  unpack_normalize32(b, eb, sb);
  const u64 p = static_cast<u64>(sa) * sb;  // in [2^46, 2^48)
  int be;
  u32 z;
  if ((p >> 47) != 0) {
    z = shift_right_jam64to32(p, 17);
    be = ea + eb - 126;
  } else {
    z = shift_right_jam64to32(p, 16);
    be = ea + eb - 127;
  }
  return round_pack32(sign, be, z);
}

u32 f32_div(u32 a, u32 b) {
  if (is_nan32(a) || is_nan32(b)) return propagate_nan32(a, b);
  const u32 sign = sign_of32(a) ^ sign_of32(b);
  if (is_inf32(a)) {
    if (is_inf32(b)) return kCanonicalNan32;  // inf / inf
    return sign | kInf32;
  }
  if (is_inf32(b)) return sign;  // finite / inf = signed 0
  if (is_zero32(b)) {
    if (is_zero32(a)) return kCanonicalNan32;  // 0 / 0
    return sign | kInf32;                      // x / 0 = inf
  }
  if (is_zero32(a)) return sign;
  int ea, eb;
  u32 sa, sb;
  unpack_normalize32(a, ea, sa);
  unpack_normalize32(b, eb, sb);
  int be;
  u64 n;
  if (sa >= sb) {
    n = static_cast<u64>(sa) << 30;  // quotient in [2^30, 2^31)
    be = ea - eb + 127;
  } else {
    n = static_cast<u64>(sa) << 31;  // quotient in (2^30, 2^31)
    be = ea - eb + 126;
  }
  u32 q = static_cast<u32>(n / sb);
  const u64 r = n - static_cast<u64>(q) * sb;
  if (r != 0) q |= 1;  // sticky
  HJSVD_ASSERT((q >> 30) == 1, "quotient must be normalized at bit 30");
  return round_pack32(sign, be, q);
}

u32 f32_sqrt(u32 a) {
  if (is_nan32(a)) return a | kQuietBit32;
  if (is_zero32(a)) return a;                // sqrt(+-0) = +-0
  if (sign_of32(a)) return kCanonicalNan32;  // sqrt of negative
  if (is_inf32(a)) return a;
  int ea;
  u32 sa;
  unpack_normalize32(a, ea, sa);
  // value = sa * 2^t with t = ea - 150; force t even so sqrt halves it.
  int t = ea - 150;
  u64 x = sa;
  if (t & 1) {
    x <<= 1;
    t -= 1;
  }
  // x in [2^23, 2^25).  Unlike binary64 (odd fraction width there makes the
  // two octaves collapse under one even shift), binary32 needs a per-octave
  // even shift to land S = floor(sqrt(x << 2j)) in [2^30, 2^31).
  int j;
  if ((x >> 24) != 0) {
    x <<= 36;  // x in [2^24, 2^25) => x<<36 in [2^60, 2^61)
    j = 18;
  } else {
    x <<= 38;  // x in [2^23, 2^24) => x<<38 in [2^61, 2^62)
    j = 19;
  }
  u64 rem = 0, root = 0;
  for (int shift = 62; shift >= 0; shift -= 2) {
    rem = (rem << 2) | ((x >> shift) & 0x3);
    root <<= 1;
    const u64 trial = (root << 1) | 1;
    if (rem >= trial) {
      rem -= trial;
      root |= 1;
    }
  }
  u32 z = static_cast<u32>(root);
  HJSVD_ASSERT((z >> 30) == 1, "sqrt significand must be normalized");
  if (rem != 0) z |= 1;  // sticky
  // round_pack32 expects z * 2^(be - 157); here value = z * 2^(t/2 - j).
  return round_pack32(0, t / 2 - j + 157, z);
}

}  // namespace hjsvd::fp

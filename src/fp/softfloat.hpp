// Bit-accurate software model of IEEE-754 binary64 arithmetic.
//
// The paper's accelerator is built from Xilinx Coregen double-precision
// floating-point cores (add/sub, mul, div, sqrt), which implement IEEE-754
// with round-to-nearest-even.  This module reimplements those five
// operations purely with integer arithmetic so that
//   (a) the simulated datapath has an explicit, testable definition of the
//       hardware's numerics, independent of the host FPU, and
//   (b) we can *prove by differential test* that native `double` arithmetic
//       on the host produces bit-identical results, which justifies running
//       the large-scale simulations with native doubles (see DESIGN.md §6).
//
// Semantics: round-to-nearest-even, full subnormal support, IEEE special
// values.  NaN propagation: an input NaN is returned quieted (payload
// preserved); invalid operations produce the canonical quiet NaN.  Exception
// flags are not modeled (the Coregen cores expose them but the paper's
// design does not consume them).
#pragma once

#include <bit>
#include <cstdint>

namespace hjsvd::fp {

/// Reinterprets a double as its IEEE-754 bit pattern.
inline std::uint64_t to_bits(double x) { return std::bit_cast<std::uint64_t>(x); }

/// Reinterprets an IEEE-754 bit pattern as a double.
inline double from_bits(std::uint64_t b) { return std::bit_cast<double>(b); }

/// Reinterprets a float as its IEEE-754 binary32 bit pattern.
inline std::uint32_t to_bits32(float x) { return std::bit_cast<std::uint32_t>(x); }

/// Reinterprets an IEEE-754 binary32 bit pattern as a float.
inline float from_bits32(std::uint32_t b) { return std::bit_cast<float>(b); }

// --- Bit-level operations -------------------------------------------------

std::uint64_t f64_add(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_sub(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_mul(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_div(std::uint64_t a, std::uint64_t b);
std::uint64_t f64_sqrt(std::uint64_t a);

// --- Classification helpers ------------------------------------------------

bool f64_is_nan(std::uint64_t a);
bool f64_is_inf(std::uint64_t a);
bool f64_is_zero(std::uint64_t a);
bool f64_is_subnormal(std::uint64_t a);

// --- Bit-level operations, binary32 ----------------------------------------
//
// Same semantics as the binary64 set (RNE, subnormals, quieted NaN
// propagation); added for the mixed-precision engine so the float sweep
// phase has the same testable, host-FPU-independent definition that the
// double path has.

std::uint32_t f32_add(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_sub(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_mul(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_div(std::uint32_t a, std::uint32_t b);
std::uint32_t f32_sqrt(std::uint32_t a);

bool f32_is_nan(std::uint32_t a);
bool f32_is_inf(std::uint32_t a);
bool f32_is_zero(std::uint32_t a);
bool f32_is_subnormal(std::uint32_t a);

// --- double-typed convenience wrappers -------------------------------------

inline double sf_add(double x, double y) { return from_bits(f64_add(to_bits(x), to_bits(y))); }
inline double sf_sub(double x, double y) { return from_bits(f64_sub(to_bits(x), to_bits(y))); }
inline double sf_mul(double x, double y) { return from_bits(f64_mul(to_bits(x), to_bits(y))); }
inline double sf_div(double x, double y) { return from_bits(f64_div(to_bits(x), to_bits(y))); }
inline double sf_sqrt(double x) { return from_bits(f64_sqrt(to_bits(x))); }

// --- float-typed convenience wrappers --------------------------------------

inline float sf32_add(float x, float y) { return from_bits32(f32_add(to_bits32(x), to_bits32(y))); }
inline float sf32_sub(float x, float y) { return from_bits32(f32_sub(to_bits32(x), to_bits32(y))); }
inline float sf32_mul(float x, float y) { return from_bits32(f32_mul(to_bits32(x), to_bits32(y))); }
inline float sf32_div(float x, float y) { return from_bits32(f32_div(to_bits32(x), to_bits32(y))); }
inline float sf32_sqrt(float x) { return from_bits32(f32_sqrt(to_bits32(x))); }

}  // namespace hjsvd::fp
